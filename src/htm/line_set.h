// Open-addressing hash maps with O(1) bulk clear, used for transaction
// read/write-set bookkeeping.
//
// A transaction descriptor is reused across millions of attempts, so the
// set must clear in O(1): each slot carries the epoch in which it was
// written and lookups ignore slots from older epochs. Growth doubles the
// table; keys are never removed within an epoch.
#pragma once

#include <cstdint>
#include <vector>

namespace sprwl::htm {

namespace detail {
inline std::uint64_t mix64(std::uint64_t x) noexcept {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}
}  // namespace detail

/// Map from a key (line index or pointer) to a 32-bit payload.
template <class Key>
class EpochMap {
 public:
  explicit EpochMap(std::size_t initial_capacity = 256) {
    std::size_t cap = 16;
    while (cap < initial_capacity) cap <<= 1;
    slots_.resize(cap);
  }

  void clear() noexcept {
    ++epoch_;
    size_ = 0;
    if (epoch_ == 0) {  // epoch wrapped: hard reset (every ~4G transactions)
      for (auto& s : slots_) s.epoch = 0;
      epoch_ = 1;
    }
  }

  std::size_t size() const noexcept { return size_; }

  /// Returns the payload slot for `key`, inserting `fresh` if absent.
  /// `inserted` reports whether the key was new.
  std::uint32_t& get_or_insert(Key key, std::uint32_t fresh, bool& inserted) {
    if ((size_ + 1) * 10 >= slots_.size() * 7) grow();
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = detail::mix64(static_cast<std::uint64_t>(key)) & mask;
    for (;;) {
      Slot& s = slots_[i];
      if (s.epoch != epoch_) {
        s.epoch = epoch_;
        s.key = key;
        s.value = fresh;
        ++size_;
        inserted = true;
        return s.value;
      }
      if (s.key == key) {
        inserted = false;
        return s.value;
      }
      i = (i + 1) & mask;
    }
  }

  /// Returns the payload for `key`, or nullptr if absent.
  const std::uint32_t* find(Key key) const noexcept {
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = detail::mix64(static_cast<std::uint64_t>(key)) & mask;
    for (;;) {
      const Slot& s = slots_[i];
      if (s.epoch != epoch_) return nullptr;
      if (s.key == key) return &s.value;
      i = (i + 1) & mask;
    }
  }

 private:
  struct Slot {
    Key key{};
    std::uint32_t epoch = 0;
    std::uint32_t value = 0;
  };

  void grow() {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(old.size() * 2, Slot{});
    const std::size_t mask = slots_.size() - 1;
    for (const Slot& s : old) {
      if (s.epoch != epoch_) continue;
      std::size_t i = detail::mix64(static_cast<std::uint64_t>(s.key)) & mask;
      while (slots_[i].epoch == epoch_) i = (i + 1) & mask;
      slots_[i] = s;
    }
  }

  std::vector<Slot> slots_;
  std::uint32_t epoch_ = 1;
  std::size_t size_ = 0;
};

}  // namespace sprwl::htm
