// Best-effort HTM emulation: public types.
//
// Commercial HTM (Intel RTM, POWER8) gives programs exactly four things the
// SpRWL algorithm consumes:
//
//   1. transactions whose stores become visible atomically at commit;
//   2. eager ("strong isolation") conflict detection against both
//      transactional and plain accesses;
//   3. a *best-effort* contract: transactions may abort for capacity,
//      conflicts, interrupts (spurious), or on request, reporting a cause
//      and an 8-bit user code (Intel's _xabort(imm8));
//   4. bounded read/write footprints determined by cache geometry.
//
// src/htm emulates those semantics in software (see engine.h for how), with
// capacity profiles mimicking the two machines of the paper's evaluation.
// HTM hardware is unavailable in this environment; DESIGN.md documents the
// substitution.
#pragma once

#include <cstdint>

#include "sim/topology.h"

namespace sprwl::htm {

/// Why a transaction attempt failed. Mirrors the cause bits of Intel RTM's
/// abort status word.
enum class AbortCause : std::uint8_t {
  kNone = 0,      ///< committed successfully
  kConflict,      ///< read-set invalidated by a concurrent commit/store
  kCapacity,      ///< read or write footprint exceeded the profile
  kExplicit,      ///< tx_abort(code) was called inside the transaction
  kSpurious,      ///< modelled interrupt/context-switch abort
};

const char* to_string(AbortCause c) noexcept;

/// Result of one transaction attempt.
struct TxStatus {
  AbortCause cause = AbortCause::kNone;
  std::uint8_t code = 0;  ///< user code for kExplicit (like _xabort imm8)

  bool committed() const noexcept { return cause == AbortCause::kNone; }
};

/// Hardware capacity limits, in 64-byte cache lines.
///
/// Numbers model the *effective* random-access footprint after which the
/// paper's machines abort, not the raw cache sizes: Broadwell writes are
/// bounded by the ~22KB L1 write buffer (352 lines); reads are tracked
/// beyond L1 (the paper cites 4MB for sequential access) but random-access
/// read sets evict and abort with high probability once they spill L1d, so
/// the effective profile uses 512 lines (32KB). POWER8 tracks both reads
/// and writes in an 8KB structure (128 lines).
struct CapacityProfile {
  const char* name;
  std::uint32_t read_lines;
  std::uint32_t write_lines;
};

inline constexpr CapacityProfile kBroadwell{"broadwell", 512, 352};
inline constexpr CapacityProfile kPower8{"power8", 128, 128};
/// For tests that want no capacity effects.
inline constexpr CapacityProfile kUnbounded{"unbounded", ~0u, ~0u};

/// How commits and strong-isolation stores serialize against each other.
enum class CommitMode : std::uint8_t {
  /// TL2-style per-line versioned locks: a commit CASes the lock bit into
  /// each written line individually (sorted order, no global lock), so
  /// disjoint commits and nontx stores to different lines proceed fully in
  /// parallel. The default.
  kPerLineLocks,
  /// The original centralized protocol: every commit and nontx store takes
  /// one global TATAS spin lock. Kept as the measurable baseline the
  /// micro-benchmarks compare against (with the lock's handoff contention
  /// charged to virtual time, like every other TATAS lock in the library).
  kGlobalLock,
};

struct EngineConfig {
  CapacityProfile capacity = kBroadwell;
  /// Probability, per transactional access, of a modelled interrupt abort.
  double spurious_abort_rate = 0.0;
  /// Dense thread ids must be < max_threads.
  int max_threads = 128;
  /// log2 of the version/lock table size; aliasing between distinct lines
  /// models cache-index conflicts (tiny tables are used in tests for that).
  int table_bits = 20;
  /// Seed for the per-descriptor spurious-abort RNG streams.
  std::uint64_t seed = 42;
  /// Commit-path serialization protocol (see CommitMode).
  CommitMode commit_mode = CommitMode::kPerLineLocks;
  /// Simulated machine topology. With >1 socket the engine tracks, per
  /// dense cache-line id, which thread touched the line last and charges
  /// CostModel::remote_socket / remote_cross on top of the base access cost
  /// when the line migrates (see engine.h, coherence_extra). The 1-socket
  /// default performs no tracking and no extra charges.
  sim::Topology topology{};
  /// Force owner tracking on even for a 1-socket topology — lets the bench
  /// prove tracking itself is virtual-time neutral (same-socket extras
  /// default to 0, so outputs stay bit-identical to tracking disabled).
  bool track_line_owners = false;
  /// MVCC snapshot support: number of prior versions retained per line in a
  /// bounded ring (0 = off, the default — no memory, no branches beyond one
  /// flag test, virtual-time traces identical to the seed). With K > 0
  /// every publish additionally records the overwritten word's old value
  /// keyed by the commit version, and snapshot readers
  /// (snapshot_begin/snapshot_read, see engine.h) serve reads at their
  /// pinned version from the ring instead of waiting out writers.
  std::uint32_t retain_versions = 0;
  /// Checker self-validation ONLY: snapshot reads skip the version-buffer
  /// lookup and return current memory even when the line is newer than the
  /// reader's pin — a too-new read the SI checker must catch.
  bool broken_snapshot_too_new = false;
};

/// Per-engine event counters (aggregated over all threads).
struct EngineStats {
  std::uint64_t commits_htm = 0;
  std::uint64_t commits_rot = 0;
  std::uint64_t aborts_conflict = 0;
  std::uint64_t aborts_capacity = 0;
  std::uint64_t aborts_explicit = 0;
  std::uint64_t aborts_spurious = 0;
  /// Contended per-line acquisitions during commits: the line was locked or
  /// the CAS lost a race, and the committer had to retry (kPerLineLocks).
  std::uint64_t commit_line_retries = 0;
  /// Contended line acquisitions by nontx_store/nontx_cas publishes.
  std::uint64_t nontx_line_retries = 0;
  /// nontx publishes that waited out a concurrent commit's publish window
  /// (the strong-isolation drain; see engine.h).
  std::uint64_t publish_drains = 0;
  /// Line ownership migrations observed while owner tracking is on (zero
  /// otherwise): transfers between cores of one socket, across sockets, and
  /// across nodes (the RDMA-priced fabric hop; only with a multi-node
  /// sim::Topology). The NUMA and distributed benchmarks read these to
  /// attribute virtual-time differences to coherence traffic rather than
  /// algorithmic work.
  std::uint64_t socket_transfers = 0;
  std::uint64_t cross_transfers = 0;
  std::uint64_t node_transfers = 0;
  /// MVCC (EngineConfig::retain_versions > 0, zero otherwise):
  /// snapshot reads served from the version ring (the line was newer than
  /// the reader's pin and the old value was found) vs. misses (the needed
  /// version was reclaimed or never recorded — the reader fell back to the
  /// stall path), and publishes that could not retain their overwritten
  /// value because the ring was full of entries still pinned by a live
  /// snapshot (the floor rose instead; affected snapshots miss).
  std::uint64_t snapshot_hits = 0;
  std::uint64_t snapshot_misses = 0;
  std::uint64_t version_overflows = 0;
  /// High-water mark of live (retained, reclaimable-window) entries across
  /// all version rings — the signal an adaptive ring-depth policy keys off:
  /// a ring that never fills past k can shrink to k, one pinned at
  /// retain_versions wants to grow. Zero when MVCC is off.
  std::uint64_t ring_occupancy_max = 0;
  /// Home-directory ownership model only (CostModel::ownership ==
  /// kHomeDirectory, zero otherwise): sharer-socket invalidations charged to
  /// writers (one per sharing socket evicted) — the coherence traffic the
  /// migratory model mis-attributes to readers.
  std::uint64_t invalidations = 0;

  std::uint64_t total_aborts() const noexcept {
    return aborts_conflict + aborts_capacity + aborts_explicit + aborts_spurious;
  }
};

}  // namespace sprwl::htm
