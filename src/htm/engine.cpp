#include "htm/engine.h"

#include <algorithm>
#include <bit>
#include <stdexcept>

#include "common/scope_exit.h"

namespace sprwl::htm {

std::atomic<Engine*> Engine::g_current{nullptr};
thread_local Engine* Engine::t_current = nullptr;

const char* to_string(AbortCause c) noexcept {
  switch (c) {
    case AbortCause::kNone:
      return "none";
    case AbortCause::kConflict:
      return "conflict";
    case AbortCause::kCapacity:
      return "capacity";
    case AbortCause::kExplicit:
      return "explicit";
    case AbortCause::kSpurious:
      return "spurious";
  }
  return "?";
}

Engine::Engine(EngineConfig cfg)
    : cfg_(cfg),
      spurious_rate_(cfg.spurious_abort_rate),
      table_mask_((1ULL << cfg.table_bits) - 1),
      table_(1ULL << cfg.table_bits) {
  if (cfg.max_threads <= 0) throw std::invalid_argument("max_threads must be > 0");
  if (cfg.table_bits < 4 || cfg.table_bits > 28)
    throw std::invalid_argument("table_bits out of range [4,28]");
  // Line-id map capacity: at least 2^15 slots even for the tiny tables the
  // aliasing tests use (aliasing is modelled by the *table* wrap, not by
  // running out of ids), at most 2^24; limit insertions to half capacity so
  // probes always terminate.
  const int id_bits = std::min(std::max(cfg.table_bits, 14) + 1, 24);
  id_mask_ = (1ULL << id_bits) - 1;
  line_id_limit_ = 1u << (id_bits - 1);
  line_keys_ = std::vector<std::atomic<std::uint64_t>>(1ULL << id_bits);
  line_ids_ = std::vector<std::atomic<std::uint32_t>>(1ULL << id_bits);
  track_owners_ =
      cfg.track_line_owners || cfg.topology.sockets > 1 || cfg.topology.nodes > 1;
  if (track_owners_) {
    owners_ = std::vector<std::atomic<std::uint32_t>>(1ULL << cfg.table_bits);
  }
  retain_ = cfg.retain_versions;
  if (retain_ != 0) {
    // One K-slot ring per table index (~24 bytes/slot): callers enabling
    // retention size table_bits to the workload's line count, not the
    // 2^20 default.
    line_hist_ = std::vector<LineHist>(1ULL << cfg.table_bits);
    version_ring_ =
        std::vector<VersionSlot>((1ULL << cfg.table_bits) * retain_);
  }
  descriptors_.reserve(static_cast<std::size_t>(cfg.max_threads));
  std::uint64_t seed_state = cfg.seed;
  for (int i = 0; i < cfg.max_threads; ++i) {
    auto d = std::make_unique<Descriptor>();
    d->rng = Rng(splitmix64(seed_state));
    d->cap_read_lines.store(cfg.capacity.read_lines, std::memory_order_relaxed);
    d->cap_write_lines.store(cfg.capacity.write_lines, std::memory_order_relaxed);
    descriptors_.push_back(std::move(d));
  }
}

void Engine::set_thread_capacity(int tid, std::uint32_t read_lines,
                                 std::uint32_t write_lines) {
  if (tid < 0 || tid >= cfg_.max_threads) return;
  Descriptor& d = *descriptors_[static_cast<std::size_t>(tid)];
  d.cap_read_lines.store(read_lines, std::memory_order_relaxed);
  d.cap_write_lines.store(write_lines, std::memory_order_relaxed);
}

void Engine::syscall(std::uint64_t cost_cycles) {
  if (in_tx()) abort_internal(AbortCause::kSpurious);
  platform::advance(cost_cycles);
}

Engine::~Engine() {
  // Clear only slots that still point at this engine: the thread-local one
  // unconditionally, the process-wide one with a CAS so destroying an
  // engine on one worker thread never clears another worker's install.
  if (t_current == this) t_current = nullptr;
  Engine* expected = this;
  g_current.compare_exchange_strong(expected, nullptr,
                                    std::memory_order_acq_rel);
}

void Engine::abort_tx(std::uint8_t code) {
  assert(in_tx() && "abort_tx outside a transaction");
  abort_internal(AbortCause::kExplicit, code);
}

void Engine::abort_internal(AbortCause cause, std::uint8_t code) {
  throw AbortException(cause, code);
}

void Engine::maybe_spurious(Descriptor& d) {
  const double rate = spurious_rate_.load(std::memory_order_relaxed);
  if (rate > 0.0 && d.rng.next_bool(rate)) {
    abort_internal(AbortCause::kSpurious);
  }
}

void Engine::begin_attempt(Descriptor& d, bool rot) {
  platform::advance(g_costs.tx_begin);
  assert(d.snap_pin.load(std::memory_order_relaxed) == kNoSnapshot &&
         "transaction inside a snapshot section (end the snapshot first)");
  d.depth = 1;
  d.is_rot = rot;
  d.rv = gvc_.load(std::memory_order_acquire);
  d.reads.clear();
  d.read_lines.clear();
  d.writes.clear();
  d.write_words.clear();
  d.write_lines.clear();
  d.write_line_list.clear();
  if (rot) {
    // The engine emulates POWER8, where ROTs are effectively serialized by
    // the users of the feature (RW-LE holds a writer lock around them).
    const int prev = active_rots_.fetch_add(1, std::memory_order_acq_rel);
    assert(prev == 0 && "concurrent ROTs are not supported (serialize them)");
    (void)prev;
  }
}

void Engine::extend(Descriptor& d) {
  const std::uint64_t new_rv = gvc_.load(std::memory_order_acquire);
  for (const ReadEntry& e : d.reads) {
    const std::uint64_t v = table_[e.line].load(std::memory_order_acquire);
    if (v != e.version) abort_internal(AbortCause::kConflict);
  }
  d.rv = new_rv;
}

std::uint64_t Engine::coherence_extra(std::uint32_t line, bool is_write) noexcept {
  const int tid = platform::thread_id();
  if (tid < 0) return 0;  // no dense id -> no socket; leave ownership alone
  std::atomic<std::uint32_t>& slot = owners_[line];
  if (g_costs.ownership == CostModel::kHomeDirectory) {
    return home_directory_extra(slot, tid, is_write);
  }
  const std::uint32_t self_id = static_cast<std::uint32_t>(tid) + 1;
  const std::uint32_t prev = slot.load(std::memory_order_relaxed);
  if (prev == self_id) return 0;  // local hit
  slot.store(self_id, std::memory_order_relaxed);
  if (prev == 0) return 0;  // first touch: the line is born local
  const int prev_tid = static_cast<int>(prev) - 1;
  if (!cfg_.topology.same_node(prev_tid, tid)) {
    // Fabric hop: the line's last toucher lives on another node. There is
    // no cache coherence across nodes — this prices the one-sided remote
    // read the dist tier issues; protocol-level safety (versions, leases)
    // is the caller's problem (src/dist/).
    node_transfers_.fetch_add(1, std::memory_order_relaxed);
    return g_costs.remote_node;
  }
  if (cfg_.topology.same_socket(prev_tid, tid)) {
    socket_transfers_.fetch_add(1, std::memory_order_relaxed);
    return g_costs.remote_socket;
  }
  cross_transfers_.fetch_add(1, std::memory_order_relaxed);
  return g_costs.remote_cross;
}

std::uint64_t Engine::home_directory_extra(std::atomic<std::uint32_t>& slot,
                                           int tid, bool is_write) noexcept {
  // Within a simulator run fibers are serialized at decision points and the
  // real-thread stress suites only assert *counters*, never exact virtual
  // time, so a plain load/modify/store on the owner word is sufficient —
  // the same discipline the migratory leg uses.
  const int socket = cfg_.topology.socket_of(tid);
  const std::uint32_t bit = 1u << (socket % kSharerBits);
  const std::uint32_t word = slot.load(std::memory_order_relaxed);
  if (word == 0) {
    // First touch: the line is born local and homed at the toucher's socket.
    slot.store(kHomeTouchedBit |
                   (static_cast<std::uint32_t>(socket % 128) << kSharerBits) |
                   bit,
               std::memory_order_relaxed);
    return 0;
  }
  const std::uint32_t mask = word & kSharerMask;
  const int home = static_cast<int>((word >> kSharerBits) & 0x7f);
  if (!is_write) {
    if ((mask & bit) != 0) return 0;  // this socket already shares the line
    // Fetch-to-shared: one transfer joins the mask; later reads from this
    // socket are free until a writer invalidates it. Priced against the
    // line's home directory (fabric tier when home is on another node).
    slot.store((word & ~kSharerMask) | mask | bit, std::memory_order_relaxed);
    if (cfg_.topology.node_of_socket(home) !=
        cfg_.topology.node_of_socket(socket)) {
      node_transfers_.fetch_add(1, std::memory_order_relaxed);
      return g_costs.remote_node;
    }
    cross_transfers_.fetch_add(1, std::memory_order_relaxed);
    return g_costs.remote_cross;
  }
  // Write: invalidate every *other* sharing socket (one message each, fabric
  // tier for sharers on other nodes), then the writer holds it exclusive.
  // The home socket never moves — that is the directory point.
  const std::uint32_t others = mask & ~bit;
  slot.store((word & ~kSharerMask) | bit, std::memory_order_relaxed);
  if (others == 0) return 0;
  std::uint64_t extra = 0;
  const int self_node = cfg_.topology.node_of_socket(socket);
  for (int s = 0; s < kSharerBits; ++s) {
    if ((others & (1u << s)) == 0) continue;
    extra += cfg_.topology.node_of_socket(s) != self_node ? g_costs.remote_node
                                                          : g_costs.remote_cross;
  }
  invalidations_.fetch_add(std::popcount(others), std::memory_order_relaxed);
  return extra;
}

std::uint64_t Engine::tx_read(const std::atomic<std::uint64_t>& cell) {
  Descriptor& d = self();
  assert(d.depth > 0 && "tx_read outside a transaction");
  platform::advance(g_costs.load);
  maybe_spurious(d);

  const auto addr = reinterpret_cast<std::uintptr_t>(&cell);
  if (!d.writes.empty()) {
    if (const std::uint32_t* idx = d.write_words.find(addr))
      return d.writes[*idx].value;
  }
  if (d.is_rot) return cell.load(std::memory_order_acquire);

  const std::uint32_t line = line_of(addr);
  if (track_owners_) charge_coherence(line);
  bool inserted = false;
  std::uint32_t& slot = d.read_lines.get_or_insert(
      line, static_cast<std::uint32_t>(d.reads.size()), inserted);
  if (!inserted) {
    // Line already in the read set: it must still hold the version we
    // recorded, otherwise our snapshot is broken.
    const std::uint64_t recorded = d.reads[slot].version;
    const std::uint64_t v1 = table_[line].load(std::memory_order_acquire);
    if (v1 != recorded) abort_internal(AbortCause::kConflict);
    const std::uint64_t val = cell.load(std::memory_order_acquire);
    if (table_[line].load(std::memory_order_acquire) != recorded)
      abort_internal(AbortCause::kConflict);
    return val;
  }

  if (d.reads.size() + 1 > d.cap_read_lines.load(std::memory_order_relaxed))
    abort_internal(AbortCause::kCapacity);

  for (;;) {
    const std::uint64_t v1 = table_[line].load(std::memory_order_acquire);
    if ((v1 & kLockedBit) != 0) {  // a commit is mid-publish on this line
      platform::pause();
      continue;
    }
    const std::uint64_t val = cell.load(std::memory_order_acquire);
    const std::uint64_t v2 = table_[line].load(std::memory_order_acquire);
    if (v1 != v2) continue;
    if (v1 > d.rv) extend(d);  // throws AbortException on failure
    d.reads.push_back(ReadEntry{line, v1});
    return val;
  }
}

std::uint64_t Engine::tx_read_line_or(const std::atomic<std::uint64_t>* first,
                                      std::size_t n) {
  Descriptor& d = self();
  assert(d.depth > 0 && "tx_read_line_or outside a transaction");
  assert(n >= 1 && n <= 8 && "a 64-byte line holds at most 8 words");
  platform::advance(g_costs.load);  // one line-granular load
  maybe_spurious(d);

  // OR of the transaction's view of the n words: the redo log is
  // word-granular, so a word this transaction already wrote is substituted
  // from the log instead of loaded from memory.
  const auto load_or = [&] {
    std::uint64_t acc = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (!d.writes.empty()) {
        const auto waddr = reinterpret_cast<std::uintptr_t>(first + i);
        if (const std::uint32_t* idx = d.write_words.find(waddr)) {
          acc |= d.writes[*idx].value;
          continue;
        }
      }
      acc |= first[i].load(std::memory_order_acquire);
    }
    return acc;
  };

  if (d.is_rot) return load_or();

  const auto addr = reinterpret_cast<std::uintptr_t>(first);
  const std::uint32_t line = line_of(addr);
  if (track_owners_) charge_coherence(line);
  bool inserted = false;
  std::uint32_t& slot = d.read_lines.get_or_insert(
      line, static_cast<std::uint32_t>(d.reads.size()), inserted);
  if (!inserted) {
    // Line already in the read set: same stability protocol as tx_read.
    const std::uint64_t recorded = d.reads[slot].version;
    if (table_[line].load(std::memory_order_acquire) != recorded)
      abort_internal(AbortCause::kConflict);
    const std::uint64_t val = load_or();
    if (table_[line].load(std::memory_order_acquire) != recorded)
      abort_internal(AbortCause::kConflict);
    return val;
  }

  if (d.reads.size() + 1 > d.cap_read_lines.load(std::memory_order_relaxed))
    abort_internal(AbortCause::kCapacity);

  for (;;) {
    const std::uint64_t v1 = table_[line].load(std::memory_order_acquire);
    if ((v1 & kLockedBit) != 0) {  // a commit is mid-publish on this line
      platform::pause();
      continue;
    }
    const std::uint64_t val = load_or();
    const std::uint64_t v2 = table_[line].load(std::memory_order_acquire);
    if (v1 != v2) continue;
    if (v1 > d.rv) extend(d);  // throws AbortException on failure
    d.reads.push_back(ReadEntry{line, v1});
    return val;
  }
}

void Engine::tx_write(std::atomic<std::uint64_t>& cell, std::uint64_t v) {
  Descriptor& d = self();
  assert(d.depth > 0 && "tx_write outside a transaction");
  platform::advance(g_costs.store);
  maybe_spurious(d);

  const auto addr = reinterpret_cast<std::uintptr_t>(&cell);
  bool inserted = false;
  std::uint32_t& slot = d.write_words.get_or_insert(
      addr, static_cast<std::uint32_t>(d.writes.size()), inserted);
  if (!inserted) {
    d.writes[slot].value = v;
    return;
  }
  const std::uint32_t line = line_of(addr);
  bool line_inserted = false;
  d.write_lines.get_or_insert(line, 1, line_inserted);
  if (line_inserted) {
    if (d.write_lines.size() > d.cap_write_lines.load(std::memory_order_relaxed)) {
      abort_internal(AbortCause::kCapacity);
    }
    d.write_line_list.push_back(line);
  }
  d.writes.push_back(WriteEntry{&cell, v});
}

void Engine::commit_lock() {
  for (;;) {
    if (!commit_locked_.exchange(true, std::memory_order_acquire)) break;
    commit_waiters_.fetch_add(1, std::memory_order_relaxed);
    ScopeExit uncount(
        [this] { commit_waiters_.fetch_sub(1, std::memory_order_relaxed); });
    while (commit_locked_.load(std::memory_order_relaxed)) platform::pause();
  }
  // Contended handoff: the winner's RMW contends with every spinner's (the
  // TATAS invalidation storm, same model as SpinMutex). Charged while the
  // lock is held — this is what serializes centralized publishes in
  // virtual time and what kPerLineLocks removes.
  const int w = commit_waiters_.load(std::memory_order_relaxed);
  if (w > 0)
    platform::advance(static_cast<std::uint64_t>(w) * g_costs.contention_unit);
}

void Engine::commit_unlock() noexcept {
  commit_locked_.store(false, std::memory_order_release);
}

std::uint64_t Engine::lock_line(std::uint32_t line, std::uint64_t& retries) {
  std::atomic<std::uint64_t>& slot = table_[line];
  for (;;) {
    std::uint64_t v = slot.load(std::memory_order_acquire);
    if ((v & kLockedBit) != 0) {
      ++retries;
      platform::pause();
      continue;
    }
    if (slot.compare_exchange_weak(v, v | kLockedBit,
                                   std::memory_order_acq_rel,
                                   std::memory_order_relaxed)) {
      return v;
    }
    ++retries;  // lost the race; re-read and retry immediately
  }
}

void Engine::drain_publishers() {
  if (publish_count_.load(std::memory_order_seq_cst) == 0) return;
  bool waited = false;
  for (const auto& d : descriptors_) {
    if (d->publishing.load(std::memory_order_acquire)) {
      waited = true;
      while (d->publishing.load(std::memory_order_acquire)) platform::pause();
    }
  }
  if (waited) drains_.fetch_add(1, std::memory_order_relaxed);
}

void Engine::commit_publish_perline(Descriptor& d) {
  auto& lines = d.write_line_list;
  std::sort(lines.begin(), lines.end());  // global order -> no lock cycles
  d.locked_versions.resize(lines.size());

  std::size_t held = 0;
  bool publishing = false;
  try {
    for (; held < lines.size(); ++held)
      d.locked_versions[held] = lock_line(lines[held], d.line_retries);

    // From here every concurrent nontx publish must be able to tell that a
    // commit is mid-flight (the strong-isolation drain): flag-before-
    // validate on this side pairs with bump-before-scan on theirs.
    publish_count_.fetch_add(1, std::memory_order_relaxed);
    d.publishing.store(true, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    publishing = true;

    const std::uint64_t wv = gvc_.fetch_add(1, std::memory_order_acq_rel) + 1;
    if (!d.is_rot) {
      for (const ReadEntry& e : d.reads) {
        const auto it = std::lower_bound(lines.begin(), lines.end(), e.line);
        if (it != lines.end() && *it == e.line) {
          // A line we also write: we hold its lock; compare the version it
          // carried when we took it.
          const std::size_t idx =
              static_cast<std::size_t>(it - lines.begin());
          if (d.locked_versions[idx] != e.version)
            abort_internal(AbortCause::kConflict);
        } else {
          // Any lock bit here belongs to another writer -> conflict.
          const std::uint64_t v = table_[e.line].load(std::memory_order_acquire);
          if (v != e.version) abort_internal(AbortCause::kConflict);
        }
      }
    }

    // The accounted write-back window: validation happened at its start,
    // the held lines stay locked through it (transactional readers of them
    // wait, nontx publishes to them queue on the line, flag bumps on other
    // lines drain it), and disjoint commits advance their own clocks in
    // parallel — the distributed analogue of the old zero-time global
    // critical section. Buffered tx stores paid no coherence at tx_write
    // time; the real traffic — pulling each written line exclusive — lands
    // here, so topology extras are charged per line inside the window.
    std::uint64_t extra = 0;
    if (track_owners_) {
      for (const std::uint32_t line : lines)
        extra += coherence_extra(line, /*is_write=*/true);
    }
    if (retain_ != 0) extra += g_costs.store * d.writes.size();  // the copies
    platform::advance(g_costs.line_publish * lines.size() + extra);

    // Write-back: no virtual-time advance from here to release, so the
    // values and their new versions appear at one virtual-time instant.
    // With retention on, every overwritten word's old value is appended to
    // its line's ring first (still under the line locks, before any store),
    // so a snapshot reader that observes a new value always finds the ring
    // entry covering it.
    if (retain_ != 0) {
      std::uint64_t min_pin = kNoSnapshot - 1;
      for (const WriteEntry& w : d.writes) {
        const std::uint32_t line =
            line_of(reinterpret_cast<std::uintptr_t>(w.cell));
        history_append(line, w.cell,
                       w.cell->load(std::memory_order_relaxed), wv, min_pin);
      }
    }
    for (const WriteEntry& w : d.writes)
      w.cell->store(w.value, std::memory_order_release);
    for (std::size_t i = 0; i < lines.size(); ++i)
      table_[lines[i]].store(wv, std::memory_order_release);
    d.last_wv = wv;
    d.publishing.store(false, std::memory_order_release);
    publish_count_.fetch_sub(1, std::memory_order_release);
  } catch (...) {
    // Conflict or virtual-time limit: restore the pre-lock version words
    // (nothing was written back; any wv drawn just leaves a clock gap).
    while (held-- > 0)
      table_[lines[held]].store(d.locked_versions[held],
                                std::memory_order_release);
    if (publishing) {
      d.publishing.store(false, std::memory_order_release);
      publish_count_.fetch_sub(1, std::memory_order_release);
    }
    throw;
  }
}

void Engine::commit_publish_global(Descriptor& d) {
  commit_lock();
  try {
    std::uint64_t extra = 0;
    if (track_owners_) {
      for (const std::uint32_t line : d.write_line_list)
        extra += coherence_extra(line, /*is_write=*/true);
    }
    if (retain_ != 0) extra += g_costs.store * d.writes.size();  // the copies
    platform::advance(g_costs.line_publish * d.write_line_list.size() + extra);
  } catch (...) {
    commit_unlock();
    throw;
  }
  for (const std::uint32_t line : d.write_line_list) {
    const std::uint64_t v = table_[line].load(std::memory_order_relaxed);
    table_[line].store(v | kLockedBit, std::memory_order_release);
  }
  if (!d.is_rot) {
    for (const ReadEntry& e : d.reads) {
      const std::uint64_t v =
          table_[e.line].load(std::memory_order_acquire) & ~kLockedBit;
      if (v != e.version) {
        // Restore the lock-bitted lines and fail the commit.
        for (const std::uint32_t line : d.write_line_list) {
          const std::uint64_t cur = table_[line].load(std::memory_order_relaxed);
          table_[line].store(cur & ~kLockedBit, std::memory_order_release);
        }
        commit_unlock();
        abort_internal(AbortCause::kConflict);
      }
    }
  }
  const std::uint64_t wv = gvc_.fetch_add(1, std::memory_order_acq_rel) + 1;
  if (retain_ != 0) {
    std::uint64_t min_pin = kNoSnapshot - 1;
    for (const WriteEntry& w : d.writes) {
      const std::uint32_t line =
          line_of(reinterpret_cast<std::uintptr_t>(w.cell));
      history_append(line, w.cell, w.cell->load(std::memory_order_relaxed),
                     wv, min_pin);
    }
  }
  for (const WriteEntry& w : d.writes) {
    w.cell->store(w.value, std::memory_order_release);
  }
  for (const std::uint32_t line : d.write_line_list) {
    table_[line].store(wv, std::memory_order_release);
  }
  d.last_wv = wv;
  commit_unlock();
}

void Engine::commit_attempt(Descriptor& d) {
  platform::advance(g_costs.tx_commit);
  maybe_spurious(d);

  if (!d.writes.empty()) {
    if (cfg_.commit_mode == CommitMode::kPerLineLocks) {
      commit_publish_perline(d);
    } else {
      commit_publish_global(d);
    }
  }
  // Read-only transactions validated their snapshot at rv already.

  ++(d.is_rot ? d.commits_rot : d.commits_htm);
  if (d.is_rot) active_rots_.fetch_sub(1, std::memory_order_acq_rel);
  d.depth = 0;
}

void Engine::rollback_attempt(Descriptor& d, const AbortException& a) {
  switch (a.cause()) {
    case AbortCause::kConflict:
      ++d.ab_conflict;
      break;
    case AbortCause::kCapacity:
      ++d.ab_capacity;
      break;
    case AbortCause::kExplicit:
      ++d.ab_explicit;
      break;
    case AbortCause::kSpurious:
      ++d.ab_spurious;
      break;
    case AbortCause::kNone:
      break;
  }
  if (d.is_rot) active_rots_.fetch_sub(1, std::memory_order_acq_rel);
  d.depth = 0;
  platform::advance(g_costs.tx_abort);
}

void Engine::rollback_user(Descriptor& d) {
  // A user exception escaped the transaction body: the attempt aborts
  // cleanly (redo log discarded) and the exception propagates.
  if (d.is_rot) active_rots_.fetch_sub(1, std::memory_order_acq_rel);
  d.depth = 0;
  platform::advance(g_costs.tx_abort);
}

bool Engine::nontx_publish(std::uint32_t line, std::atomic<std::uint64_t>& cell,
                           std::uint64_t desired,
                           const std::uint64_t* expected) {
  // The publish pulls the line exclusive whatever the serialization mode;
  // the topology extra rides on the publish-window charge.
  const std::uint64_t extra =
      track_owners_ ? coherence_extra(line, /*is_write=*/true) : 0;
  if (cfg_.commit_mode == CommitMode::kGlobalLock) {
    commit_lock();
    try {
      platform::advance(g_costs.line_publish + extra +
                        (retain_ != 0 ? g_costs.store : 0));
    } catch (...) {
      commit_unlock();
      throw;
    }
    if (expected != nullptr &&
        cell.load(std::memory_order_acquire) != *expected) {
      commit_unlock();
      return false;
    }
    const std::uint64_t old = table_[line].load(std::memory_order_relaxed);
    table_[line].store(old | kLockedBit, std::memory_order_release);
    const std::uint64_t wv = gvc_.fetch_add(1, std::memory_order_acq_rel) + 1;
    if (retain_ != 0) {
      std::uint64_t min_pin = kNoSnapshot - 1;
      history_append(line, &cell, cell.load(std::memory_order_relaxed), wv,
                     min_pin);
    }
    cell.store(desired, std::memory_order_release);
    table_[line].store(wv, std::memory_order_release);
    note_publish(wv);
    commit_unlock();
    return true;
  }

  // Lock-free per-line cycle: the only word this synchronizes on is the
  // owning line's versioned lock, so publishes to different lines never
  // serialize with each other or with disjoint commits.
  std::uint64_t retries = 0;
  const std::uint64_t prelock = lock_line(line, retries);
  if (retries > 0) nontx_retries_.fetch_add(retries, std::memory_order_relaxed);
  try {
    platform::advance(g_costs.line_publish + extra +
                      (retain_ != 0 ? g_costs.store : 0));
    if (expected != nullptr &&
        cell.load(std::memory_order_acquire) != *expected) {
      table_[line].store(prelock, std::memory_order_release);
      return false;
    }
    const std::uint64_t wv = gvc_.fetch_add(1, std::memory_order_acq_rel) + 1;
    if (retain_ != 0) {
      std::uint64_t min_pin = kNoSnapshot - 1;
      history_append(line, &cell, cell.load(std::memory_order_relaxed), wv,
                     min_pin);
    }
    cell.store(desired, std::memory_order_release);
    table_[line].store(wv, std::memory_order_release);
    note_publish(wv);
  } catch (...) {
    table_[line].store(prelock, std::memory_order_release);
    throw;
  }
  // A writer that validated this line *before* our bump is still inside
  // its publish window; wait it out so the caller — about to read data
  // uninstrumented — observes everything that commit wrote (the other half
  // of strong isolation). Bump-before-scan here pairs with the committer's
  // flag-before-validate.
  std::atomic_thread_fence(std::memory_order_seq_cst);
  drain_publishers();
  return true;
}

void Engine::nontx_store(std::atomic<std::uint64_t>& cell, std::uint64_t v) {
  assert(!in_tx() && "nontx_store inside a transaction; use Shared<T>::store");
  platform::advance(g_costs.store);
  const std::uint32_t line = line_of(reinterpret_cast<std::uintptr_t>(&cell));
  nontx_publish(line, cell, v, nullptr);
}

bool Engine::nontx_cas(std::atomic<std::uint64_t>& cell, std::uint64_t expected,
                       std::uint64_t desired) {
  assert(!in_tx() && "nontx_cas inside a transaction; use Shared<T>::cas");
  // Test-and-test-and-set: a failing compare is a plain load — no line
  // version bump, no publish window, nothing for live transactions to
  // conflict with (a CAS that writes nothing is invisible to coherence).
  // It still pulls the line, so the topology extra applies.
  platform::advance(g_costs.load);
  if (track_owners_)
    charge_coherence(line_of(reinterpret_cast<std::uintptr_t>(&cell)));
  if (cell.load(std::memory_order_acquire) != expected) return false;
  platform::advance(g_costs.cas);
  const std::uint32_t line = line_of(reinterpret_cast<std::uintptr_t>(&cell));
  return nontx_publish(line, cell, desired, &expected);
}

std::uint64_t Engine::min_live_pin() const noexcept {
  std::uint64_t m = kNoSnapshot;
  for (const auto& d : descriptors_) {
    const std::uint64_t p = d->snap_pin.load(std::memory_order_acquire);
    if (p < m) m = p;
  }
  return m;
}

void Engine::note_publish(std::uint64_t wv) noexcept {
  const int tid = platform::thread_id();
  if (tid >= 0 && tid < cfg_.max_threads)
    descriptors_[static_cast<std::size_t>(tid)]->last_wv = wv;
}

void Engine::history_append(std::uint32_t line,
                            const std::atomic<std::uint64_t>* cell,
                            std::uint64_t old_value, std::uint64_t wv,
                            std::uint64_t& min_pin) {
  LineHist& h = line_hist_[line];
  const std::uint64_t s0 = h.seq.load(std::memory_order_relaxed);
  assert((s0 & 1) == 0 && "concurrent ring append despite the line lock");
  const std::uint64_t n = h.count.load(std::memory_order_relaxed);
  const std::size_t base = static_cast<std::size_t>(line) * retain_;
  std::uint64_t reclaimed_floor = 0;
  if (n >= retain_) {
    // Ring full: the oldest entry is reclaimable only once no live snapshot
    // can still need it (epoch-based reclamation in virtual time — its
    // replaced_at is at or below the oldest live pin). Otherwise the new
    // overwrite goes unrecorded: the floor rises to wv and the affected
    // snapshots fall back to the stall path (version_overflows).
    const std::uint64_t oldest =
        version_ring_[base + static_cast<std::size_t>(n % retain_)]
            .replaced_at.load(std::memory_order_relaxed);
    if (min_pin == kNoSnapshot - 1) min_pin = min_live_pin();
    if (oldest > min_pin) {
      h.seq.store(s0 + 1, std::memory_order_release);
      if (wv > h.floor.load(std::memory_order_relaxed))
        h.floor.store(wv, std::memory_order_relaxed);
      h.seq.store(s0 + 2, std::memory_order_release);
      overflows_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    reclaimed_floor = oldest;
  }
  h.seq.store(s0 + 1, std::memory_order_release);
  if (reclaimed_floor > h.floor.load(std::memory_order_relaxed))
    h.floor.store(reclaimed_floor, std::memory_order_relaxed);
  VersionSlot& s = version_ring_[base + static_cast<std::size_t>(n % retain_)];
  s.addr.store(reinterpret_cast<std::uintptr_t>(cell),
               std::memory_order_relaxed);
  s.value.store(old_value, std::memory_order_relaxed);
  s.replaced_at.store(wv, std::memory_order_relaxed);
  h.count.store(n + 1, std::memory_order_relaxed);
  h.seq.store(s0 + 2, std::memory_order_release);
  // Ring-occupancy high water (live retained entries on this line): the
  // adaptive-K signal. CAS loop so racing real-thread appends never lose a
  // maximum; uncontended it is one relaxed load.
  const std::uint64_t occ = n + 1 < retain_ ? n + 1 : retain_;
  std::uint64_t cur = ring_occ_max_.load(std::memory_order_relaxed);
  while (occ > cur && !ring_occ_max_.compare_exchange_weak(
                          cur, occ, std::memory_order_relaxed)) {
  }
}

std::uint64_t Engine::snapshot_begin() {
  Descriptor& d = self();
  if (retain_ == 0)
    throw std::logic_error(
        "snapshot_begin: EngineConfig::retain_versions is 0");
  assert(d.depth == 0 && "snapshot inside a transaction");
  const std::uint64_t s = gvc_.load(std::memory_order_acquire);
  d.snap_pin.store(s, std::memory_order_release);
  // Publish the pin before any ring lookup trusts it. Reclamation racing
  // this fence stays safe regardless — it raises the line floor, and every
  // lookup re-validates floor <= pin — the fence only keeps misses rare.
  std::atomic_thread_fence(std::memory_order_seq_cst);
  return s;
}

void Engine::snapshot_end() noexcept {
  const int tid = platform::thread_id();
  if (tid < 0 || tid >= cfg_.max_threads) return;
  descriptors_[static_cast<std::size_t>(tid)]->snap_pin.store(
      kNoSnapshot, std::memory_order_release);
}

std::uint64_t Engine::snapshot_version() noexcept {
  const int tid = platform::thread_id();
  if (tid < 0 || tid >= cfg_.max_threads) return kNoSnapshot;
  return descriptors_[static_cast<std::size_t>(tid)]->snap_pin.load(
      std::memory_order_relaxed);
}

std::uint64_t Engine::last_commit_version() noexcept { return self().last_wv; }

void Engine::note_section_version() noexcept {
  Descriptor& d = self();
  d.last_section_wv = d.last_wv;
}

std::uint64_t Engine::last_section_version() noexcept {
  return self().last_section_wv;
}

std::uint64_t Engine::snapshot_read(const std::atomic<std::uint64_t>& cell) {
  Descriptor& d = self();
  const std::uint64_t snap = d.snap_pin.load(std::memory_order_relaxed);
  assert(snap != kNoSnapshot && "snapshot_read without snapshot_begin");
  platform::advance(g_costs.load);
  const auto addr = reinterpret_cast<std::uintptr_t>(&cell);
  const std::uint32_t line = line_of(addr);
  if (track_owners_) charge_coherence(line);
  for (;;) {
    const std::uint64_t v1 = table_[line].load(std::memory_order_acquire);
    if ((v1 & kLockedBit) == 0 && v1 <= snap) {
      // Line unchanged since the pin: current memory is the snapshot value.
      const std::uint64_t val = cell.load(std::memory_order_acquire);
      if (table_[line].load(std::memory_order_acquire) == v1) return val;
      continue;  // raced a publish; reinspect
    }
    if (cfg_.broken_snapshot_too_new) {  // checker self-validation only
      ++d.snap_hits;
      return cell.load(std::memory_order_acquire);
    }
    // The line is newer than the pin (or mid-publish). One seqlock pass
    // over its ring, charged as one extra line read; the writer holding
    // the line is never waited on unless its commit belongs in this
    // snapshot.
    platform::advance(g_costs.load);
    const LineHist& h = line_hist_[line];
    const std::uint64_t s0 = h.seq.load(std::memory_order_acquire);
    if ((s0 & 1) != 0) {  // append in flight
      platform::pause();
      continue;
    }
    const std::uint64_t fl = h.floor.load(std::memory_order_acquire);
    const std::uint64_t n = h.count.load(std::memory_order_acquire);
    const std::size_t base = static_cast<std::size_t>(line) * retain_;
    // Oldest-first: per-line replaced_at is monotone (appends happen under
    // the line lock, which orders the wv fetch_adds), so the first entry
    // of this word with replaced_at > snap is the value the snapshot saw.
    bool found = false;
    std::uint64_t found_value = 0;
    for (std::uint64_t i = n > retain_ ? n - retain_ : 0; i < n && !found;
         ++i) {
      const VersionSlot& s =
          version_ring_[base + static_cast<std::size_t>(i % retain_)];
      if (s.addr.load(std::memory_order_relaxed) == addr &&
          s.replaced_at.load(std::memory_order_relaxed) > snap) {
        found_value = s.value.load(std::memory_order_relaxed);
        found = true;
      }
    }
    if (h.seq.load(std::memory_order_acquire) != s0) continue;  // ring moved
    if (snap < fl) {
      // The ring no longer covers the pin: the oldest needed version was
      // reclaimed or never retained. Fall back to the stall path.
      ++d.snap_misses;
      throw SnapshotMiss{};
    }
    if (found) {
      ++d.snap_hits;
      return found_value;
    }
    if ((v1 & kLockedBit) != 0) {
      // In-flight publish and no retained entry newer than the pin: either
      // the commit's wv is at or below the pin (its writes belong in this
      // snapshot) or its write-back is about to append the entry this
      // reader needs. Brief reader-side wait; the writer never waits.
      platform::pause();
      continue;
    }
    // No overwrite of this word since the pin (the ring is complete above
    // the floor): current memory is the snapshot value. Re-validating the
    // ring after the load catches a racing overwrite — every publish
    // appends before it stores.
    const std::uint64_t val = cell.load(std::memory_order_acquire);
    if (h.seq.load(std::memory_order_acquire) != s0) continue;
    ++d.snap_hits;
    return val;
  }
}

EngineStats Engine::stats() const {
  EngineStats s;
  for (const auto& d : descriptors_) {
    s.commits_htm += d->commits_htm;
    s.commits_rot += d->commits_rot;
    s.aborts_conflict += d->ab_conflict;
    s.aborts_capacity += d->ab_capacity;
    s.aborts_explicit += d->ab_explicit;
    s.aborts_spurious += d->ab_spurious;
    s.commit_line_retries += d->line_retries;
    s.snapshot_hits += d->snap_hits;
    s.snapshot_misses += d->snap_misses;
  }
  s.nontx_line_retries = nontx_retries_.load(std::memory_order_relaxed);
  s.publish_drains = drains_.load(std::memory_order_relaxed);
  s.socket_transfers = socket_transfers_.load(std::memory_order_relaxed);
  s.cross_transfers = cross_transfers_.load(std::memory_order_relaxed);
  s.node_transfers = node_transfers_.load(std::memory_order_relaxed);
  s.version_overflows = overflows_.load(std::memory_order_relaxed);
  s.ring_occupancy_max = ring_occ_max_.load(std::memory_order_relaxed);
  s.invalidations = invalidations_.load(std::memory_order_relaxed);
  return s;
}

void Engine::reset_stats() {
  for (auto& d : descriptors_) {
    d->commits_htm = d->commits_rot = 0;
    d->ab_conflict = d->ab_capacity = d->ab_explicit = d->ab_spurious = 0;
    d->line_retries = 0;
    d->snap_hits = d->snap_misses = 0;
  }
  nontx_retries_.store(0, std::memory_order_relaxed);
  drains_.store(0, std::memory_order_relaxed);
  socket_transfers_.store(0, std::memory_order_relaxed);
  cross_transfers_.store(0, std::memory_order_relaxed);
  node_transfers_.store(0, std::memory_order_relaxed);
  overflows_.store(0, std::memory_order_relaxed);
  ring_occ_max_.store(0, std::memory_order_relaxed);
  invalidations_.store(0, std::memory_order_relaxed);
}

}  // namespace sprwl::htm
