#include "htm/engine.h"

#include <stdexcept>

namespace sprwl::htm {

std::atomic<Engine*> Engine::g_current{nullptr};

const char* to_string(AbortCause c) noexcept {
  switch (c) {
    case AbortCause::kNone:
      return "none";
    case AbortCause::kConflict:
      return "conflict";
    case AbortCause::kCapacity:
      return "capacity";
    case AbortCause::kExplicit:
      return "explicit";
    case AbortCause::kSpurious:
      return "spurious";
  }
  return "?";
}

Engine::Engine(EngineConfig cfg)
    : cfg_(cfg),
      table_mask_((1ULL << cfg.table_bits) - 1),
      table_(1ULL << cfg.table_bits) {
  if (cfg.max_threads <= 0) throw std::invalid_argument("max_threads must be > 0");
  if (cfg.table_bits < 4 || cfg.table_bits > 28)
    throw std::invalid_argument("table_bits out of range [4,28]");
  descriptors_.reserve(static_cast<std::size_t>(cfg.max_threads));
  std::uint64_t seed_state = cfg.seed;
  for (int i = 0; i < cfg.max_threads; ++i) {
    auto d = std::make_unique<Descriptor>();
    d->rng = Rng(splitmix64(seed_state));
    descriptors_.push_back(std::move(d));
  }
}

Engine::~Engine() {
  if (current() == this) set_current(nullptr);
}

Engine::Descriptor& Engine::self() {
  const int tid = platform::thread_id();
  if (tid < 0 || tid >= cfg_.max_threads)
    throw std::logic_error(
        "htm::Engine: calling thread has no dense id (use ThreadIdScope or "
        "run under sim::Simulator), or id >= EngineConfig::max_threads");
  return *descriptors_[static_cast<std::size_t>(tid)];
}

bool Engine::in_tx() noexcept {
  const int tid = platform::thread_id();
  if (tid < 0 || tid >= cfg_.max_threads) return false;
  return descriptors_[static_cast<std::size_t>(tid)]->depth > 0;
}

void Engine::abort_tx(std::uint8_t code) {
  assert(in_tx() && "abort_tx outside a transaction");
  abort_internal(AbortCause::kExplicit, code);
}

void Engine::abort_internal(AbortCause cause, std::uint8_t code) {
  throw AbortException(cause, code);
}

void Engine::maybe_spurious(Descriptor& d) {
  if (cfg_.spurious_abort_rate > 0.0 &&
      d.rng.next_bool(cfg_.spurious_abort_rate)) {
    abort_internal(AbortCause::kSpurious);
  }
}

void Engine::begin_attempt(Descriptor& d, bool rot) {
  platform::advance(g_costs.tx_begin);
  d.depth = 1;
  d.is_rot = rot;
  d.rv = gvc_.load(std::memory_order_acquire);
  d.reads.clear();
  d.read_lines.clear();
  d.writes.clear();
  d.write_words.clear();
  d.write_lines.clear();
  d.write_line_list.clear();
  if (rot) {
    // The engine emulates POWER8, where ROTs are effectively serialized by
    // the users of the feature (RW-LE holds a writer lock around them).
    const int prev = active_rots_.fetch_add(1, std::memory_order_acq_rel);
    assert(prev == 0 && "concurrent ROTs are not supported (serialize them)");
    (void)prev;
  }
}

void Engine::extend(Descriptor& d) {
  const std::uint64_t new_rv = gvc_.load(std::memory_order_acquire);
  for (const ReadEntry& e : d.reads) {
    const std::uint64_t v = table_[e.line].load(std::memory_order_acquire);
    if (v != e.version) abort_internal(AbortCause::kConflict);
  }
  d.rv = new_rv;
}

std::uint64_t Engine::tx_read(const std::atomic<std::uint64_t>& cell) {
  Descriptor& d = self();
  assert(d.depth > 0 && "tx_read outside a transaction");
  platform::advance(g_costs.load);
  maybe_spurious(d);

  const auto addr = reinterpret_cast<std::uintptr_t>(&cell);
  if (!d.writes.empty()) {
    if (const std::uint32_t* idx = d.write_words.find(addr))
      return d.writes[*idx].value;
  }
  if (d.is_rot) return cell.load(std::memory_order_acquire);

  const std::uint32_t line = line_of(addr);
  bool inserted = false;
  std::uint32_t& slot = d.read_lines.get_or_insert(
      line, static_cast<std::uint32_t>(d.reads.size()), inserted);
  if (!inserted) {
    // Line already in the read set: it must still hold the version we
    // recorded, otherwise our snapshot is broken.
    const std::uint64_t recorded = d.reads[slot].version;
    const std::uint64_t v1 = table_[line].load(std::memory_order_acquire);
    if (v1 != recorded) abort_internal(AbortCause::kConflict);
    const std::uint64_t val = cell.load(std::memory_order_acquire);
    if (table_[line].load(std::memory_order_acquire) != recorded)
      abort_internal(AbortCause::kConflict);
    return val;
  }

  if (d.reads.size() + 1 > cfg_.capacity.read_lines)
    abort_internal(AbortCause::kCapacity);

  for (;;) {
    const std::uint64_t v1 = table_[line].load(std::memory_order_acquire);
    if ((v1 & kLockedBit) != 0) {  // a commit is mid-publish on this line
      platform::pause();
      continue;
    }
    const std::uint64_t val = cell.load(std::memory_order_acquire);
    const std::uint64_t v2 = table_[line].load(std::memory_order_acquire);
    if (v1 != v2) continue;
    if (v1 > d.rv) extend(d);  // throws AbortException on failure
    d.reads.push_back(ReadEntry{line, v1});
    return val;
  }
}

void Engine::tx_write(std::atomic<std::uint64_t>& cell, std::uint64_t v) {
  Descriptor& d = self();
  assert(d.depth > 0 && "tx_write outside a transaction");
  platform::advance(g_costs.store);
  maybe_spurious(d);

  const auto addr = reinterpret_cast<std::uintptr_t>(&cell);
  bool inserted = false;
  std::uint32_t& slot = d.write_words.get_or_insert(
      addr, static_cast<std::uint32_t>(d.writes.size()), inserted);
  if (!inserted) {
    d.writes[slot].value = v;
    return;
  }
  const std::uint32_t line = line_of(addr);
  bool line_inserted = false;
  d.write_lines.get_or_insert(line, 1, line_inserted);
  if (line_inserted) {
    if (d.write_lines.size() > cfg_.capacity.write_lines) {
      abort_internal(AbortCause::kCapacity);
    }
    d.write_line_list.push_back(line);
  }
  d.writes.push_back(WriteEntry{&cell, v});
}

void Engine::commit_lock() {
  for (;;) {
    if (!commit_locked_.exchange(true, std::memory_order_acquire)) return;
    while (commit_locked_.load(std::memory_order_relaxed)) platform::pause();
  }
}

void Engine::commit_unlock() noexcept {
  commit_locked_.store(false, std::memory_order_release);
}

void Engine::commit_attempt(Descriptor& d) {
  platform::advance(g_costs.tx_commit);
  maybe_spurious(d);

  if (d.writes.empty()) {  // read-only: snapshot already validated at rv
    ++(d.is_rot ? d.commits_rot : d.commits_htm);
    if (d.is_rot) active_rots_.fetch_sub(1, std::memory_order_acq_rel);
    d.depth = 0;
    return;
  }

  // --- publish window: no virtual-time advance from here to unlock -------
  commit_lock();
  for (const std::uint32_t line : d.write_line_list) {
    const std::uint64_t v = table_[line].load(std::memory_order_relaxed);
    table_[line].store(v | kLockedBit, std::memory_order_release);
  }
  if (!d.is_rot) {
    for (const ReadEntry& e : d.reads) {
      const std::uint64_t v =
          table_[e.line].load(std::memory_order_acquire) & ~kLockedBit;
      if (v != e.version) {
        // Restore the lock-bitted lines and fail the commit.
        for (const std::uint32_t line : d.write_line_list) {
          const std::uint64_t cur = table_[line].load(std::memory_order_relaxed);
          table_[line].store(cur & ~kLockedBit, std::memory_order_release);
        }
        commit_unlock();
        abort_internal(AbortCause::kConflict);
      }
    }
  }
  const std::uint64_t wv = gvc_.load(std::memory_order_relaxed) + 1;
  for (const WriteEntry& w : d.writes) {
    w.cell->store(w.value, std::memory_order_release);
  }
  for (const std::uint32_t line : d.write_line_list) {
    table_[line].store(wv, std::memory_order_release);
  }
  gvc_.store(wv, std::memory_order_release);
  commit_unlock();
  // ------------------------------------------------------------------------

  ++(d.is_rot ? d.commits_rot : d.commits_htm);
  if (d.is_rot) active_rots_.fetch_sub(1, std::memory_order_acq_rel);
  d.depth = 0;
}

void Engine::rollback_attempt(Descriptor& d, const AbortException& a) {
  switch (a.cause()) {
    case AbortCause::kConflict:
      ++d.ab_conflict;
      break;
    case AbortCause::kCapacity:
      ++d.ab_capacity;
      break;
    case AbortCause::kExplicit:
      ++d.ab_explicit;
      break;
    case AbortCause::kSpurious:
      ++d.ab_spurious;
      break;
    case AbortCause::kNone:
      break;
  }
  if (d.is_rot) active_rots_.fetch_sub(1, std::memory_order_acq_rel);
  d.depth = 0;
  platform::advance(g_costs.tx_abort);
}

void Engine::rollback_user(Descriptor& d) {
  // A user exception escaped the transaction body: the attempt aborts
  // cleanly (redo log discarded) and the exception propagates.
  if (d.is_rot) active_rots_.fetch_sub(1, std::memory_order_acq_rel);
  d.depth = 0;
  platform::advance(g_costs.tx_abort);
}

void Engine::nontx_store(std::atomic<std::uint64_t>& cell, std::uint64_t v) {
  assert(!in_tx() && "nontx_store inside a transaction; use Shared<T>::store");
  platform::advance(g_costs.store);
  const std::uint32_t line = line_of(reinterpret_cast<std::uintptr_t>(&cell));
  commit_lock();
  const std::uint64_t old = table_[line].load(std::memory_order_relaxed);
  table_[line].store(old | kLockedBit, std::memory_order_release);
  cell.store(v, std::memory_order_release);
  const std::uint64_t wv = gvc_.load(std::memory_order_relaxed) + 1;
  table_[line].store(wv, std::memory_order_release);
  gvc_.store(wv, std::memory_order_release);
  commit_unlock();
}

bool Engine::nontx_cas(std::atomic<std::uint64_t>& cell, std::uint64_t expected,
                       std::uint64_t desired) {
  assert(!in_tx() && "nontx_cas inside a transaction; use Shared<T>::cas");
  platform::advance(g_costs.cas);
  const std::uint32_t line = line_of(reinterpret_cast<std::uintptr_t>(&cell));
  commit_lock();
  if (cell.load(std::memory_order_acquire) != expected) {
    commit_unlock();
    return false;
  }
  const std::uint64_t old = table_[line].load(std::memory_order_relaxed);
  table_[line].store(old | kLockedBit, std::memory_order_release);
  cell.store(desired, std::memory_order_release);
  const std::uint64_t wv = gvc_.load(std::memory_order_relaxed) + 1;
  table_[line].store(wv, std::memory_order_release);
  gvc_.store(wv, std::memory_order_release);
  commit_unlock();
  return true;
}

EngineStats Engine::stats() const {
  EngineStats s;
  for (const auto& d : descriptors_) {
    s.commits_htm += d->commits_htm;
    s.commits_rot += d->commits_rot;
    s.aborts_conflict += d->ab_conflict;
    s.aborts_capacity += d->ab_capacity;
    s.aborts_explicit += d->ab_explicit;
    s.aborts_spurious += d->ab_spurious;
  }
  return s;
}

void Engine::reset_stats() {
  for (auto& d : descriptors_) {
    d->commits_htm = d->commits_rot = 0;
    d->ab_conflict = d->ab_capacity = d->ab_explicit = d->ab_spurious = 0;
  }
}

}  // namespace sprwl::htm
