// Software best-effort HTM engine.
//
// Design (word-granular redo log + line-granular conflict detection,
// TL2-style global version clock):
//
//  * Transactional stores are buffered in a per-thread redo log and become
//    visible only at commit — modelling HTM's atomic publish.
//  * Transactional loads record (cache line, observed version) and are
//    validated against a global version clock on every read ("extension"),
//    which guarantees *opacity*: live transactions only ever observe
//    consistent snapshots, exactly like hardware transactions, so emulated
//    transactions never crash on torn state.
//  * Commits are decentralized (TL2 writeback): a committing transaction
//    CAS-acquires a versioned lock on each written line *individually*, in
//    sorted line order (no deadlock), validates its read set against
//    unlocked line versions, applies the redo log and releases every line
//    with a fresh version from a fetch_add global version clock. Disjoint
//    commits never touch the same words and proceed fully in parallel —
//    there is no global commit lock on the default path (CommitMode::
//    kPerLineLocks; the old centralized protocol survives as kGlobalLock,
//    the baseline the micro-benchmarks quantify the win against). The
//    publish window charges g_costs.line_publish per line *while the lines
//    are held*, so in virtual time same-line publishes serialize and
//    disjoint ones overlap; the final write-back itself performs no advance
//    and is therefore a single virtual-time instant, like hardware.
//  * Plain ("uninstrumented") accesses go straight to memory. The one spot
//    where the SpRWL algorithm needs a plain STORE to be eagerly visible to
//    conflict detection (the reader's state flag — the paper's strong
//    isolation argument, Fig. 1) uses nontx_store()/nontx_cas(): a single
//    CAS cycle on the owning line's versioned lock (lock bit -> store ->
//    bumped version), so concurrent readers flagging different lines never
//    serialize with each other or with disjoint commits. A committing
//    writer that read the flag's line either validates after the bump (and
//    aborts) or validated before it — in which case the nontx publish
//    *drains* that writer's in-flight publish window (per-thread publishing
//    flags, single pass) before returning, so the flagging reader observes
//    every write of the commit it serialized after. This is precisely what
//    the cache-coherence protocol gives real HTM.
//  * Capacity profiles bound the number of *distinct lines* read/written;
//    exceeding them raises a capacity abort, as on the paper's machines.
//  * ROTs (rollback-only transactions, POWER8) skip read tracking and
//    validation: they buffer writes for atomic publish but detect no
//    conflicts. Callers (the RW-LE baseline) must serialize ROTs, which the
//    engine asserts.
//
// Aborts unwind via AbortException (not derived from std::exception so that
// user-level `catch (const std::exception&)` cannot swallow a rollback).
// User exceptions thrown inside a transaction abort it cleanly and then
// propagate.
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <vector>

#include "common/costs.h"
#include "common/platform.h"
#include "common/rng.h"
#include "htm/htm.h"
#include "htm/line_set.h"

namespace sprwl::htm {

/// Internal control-flow token for transaction rollback. Deliberately not a
/// std::exception: transactional user code must let it pass through.
class AbortException {
 public:
  AbortException(AbortCause cause, std::uint8_t code) noexcept
      : cause_(cause), code_(code) {}
  AbortCause cause() const noexcept { return cause_; }
  std::uint8_t code() const noexcept { return code_; }

 private:
  AbortCause cause_;
  std::uint8_t code_;
};

/// Control-flow token for a failed snapshot read: the version the reader's
/// pin requires was reclaimed from (or never fit in) the bounded ring. Like
/// AbortException it is deliberately not a std::exception — snapshot user
/// code must let it unwind to the lock layer, which falls back to a normal
/// (registered or HTM-first) read.
class SnapshotMiss {};

class Engine {
 public:
  explicit Engine(EngineConfig cfg = {});
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  const EngineConfig& config() const noexcept { return cfg_; }

  /// Runs `body` as one hardware-transaction attempt. Returns the outcome;
  /// never retries by itself (retry policies live in the lock algorithms).
  /// Re-entrant calls flatten into the enclosing transaction.
  template <class F>
  TxStatus try_transaction(F&& body) {
    Descriptor& d = self();
    if (d.depth > 0) {  // flat nesting: aborts unwind to the outer begin
      ++d.depth;
      body();
      --d.depth;
      return {};
    }
    begin_attempt(d, /*rot=*/false);
    try {
      body();
      commit_attempt(d);
      return {};
    } catch (const AbortException& a) {
      rollback_attempt(d, a);
      return {a.cause(), a.code()};
    } catch (...) {
      rollback_user(d);
      throw;
    }
  }

  /// Runs `body` as a rollback-only transaction (POWER8 ROT): buffered
  /// writes, no read tracking/validation. At most one ROT may run at a
  /// time; the caller provides that serialization (RW-LE does).
  template <class F>
  TxStatus try_rot(F&& body) {
    Descriptor& d = self();
    assert(d.depth == 0 && "ROT cannot nest inside a transaction");
    begin_attempt(d, /*rot=*/true);
    try {
      body();
      commit_attempt(d);
      return {};
    } catch (const AbortException& a) {
      rollback_attempt(d, a);
      return {a.cause(), a.code()};
    } catch (...) {
      rollback_user(d);
      throw;
    }
  }

  /// Explicitly aborts the running transaction with a user code
  /// (Intel _xabort semantics). Must be called inside a transaction.
  [[noreturn]] void abort_tx(std::uint8_t code);

  /// True when the calling thread is inside a transaction on this engine.
  /// Inline: Shared<T> consults it on every plain access, which makes it
  /// one of the hottest functions of the whole bench pipeline.
  bool in_tx() noexcept {
    const int tid = platform::thread_id();
    if (tid < 0 || tid >= cfg_.max_threads) return false;
    return descriptors_[static_cast<std::size_t>(tid)]->depth > 0;
  }

  // --- word accessors (used by Shared<T>; see shared.h) -------------------
  std::uint64_t tx_read(const std::atomic<std::uint64_t>& cell);
  void tx_write(std::atomic<std::uint64_t>& cell, std::uint64_t v);

  /// Line-granular transactional summary read: returns the bitwise OR of
  /// `n` consecutive 8-byte cells that all live on the cache line owning
  /// `first` (n <= 8; the caller guarantees the cells share the line, e.g.
  /// an aligned_vector of Shared words). Costs one load charge and one
  /// read-set entry — the coherence-granularity equivalent of reading the
  /// whole line at once, which is what SpRWL's batched commit-time reader
  /// scan models. Conflict detection is identical to reading each word with
  /// tx_read: the line's version is subscribed, so any concurrent publish
  /// to it (e.g. a reader flag store) aborts this transaction.
  std::uint64_t tx_read_line_or(const std::atomic<std::uint64_t>* first,
                                std::size_t n);

  /// Strong-isolation plain store: a lock-free publish on the owning
  /// line's versioned lock. Invalidates the line in every live
  /// transaction's read set and drains commits already past validation, so
  /// the caller subsequently reads a post-commit view. Stores to different
  /// lines never serialize.
  void nontx_store(std::atomic<std::uint64_t>& cell, std::uint64_t v);
  /// Same, as a compare-and-swap. Returns false (no write) on mismatch;
  /// the failure path is a plain load — no version bump, no publish.
  bool nontx_cas(std::atomic<std::uint64_t>& cell, std::uint64_t expected,
                 std::uint64_t desired);

  // --- MVCC snapshots (EngineConfig::retain_versions) ---------------------
  /// True when the engine retains per-line version history. Single flag
  /// test: Shared<T> consults it (via in_snapshot) on every plain load.
  bool retains_versions() const noexcept { return retain_ != 0; }

  /// Pins the calling thread's snapshot at the current global version and
  /// returns it. Until snapshot_end(), Shared<T> loads on this thread are
  /// served at this version (snapshot_read): reads of lines newer than the
  /// pin come from the version ring, so the reader never waits for — and is
  /// never seen by — writers. Requires retain_versions > 0 and no open
  /// transaction.
  std::uint64_t snapshot_begin();

  /// Releases the pin (idempotent). Reclamation may then advance past it.
  void snapshot_end() noexcept;

  /// True when the calling thread holds a snapshot pin on this engine.
  /// Inline for the same reason as in_tx(): Shared<T> consults it on every
  /// plain access, and the retain_ test keeps the default path one branch.
  bool in_snapshot() noexcept {
    if (retain_ == 0) return false;
    const int tid = platform::thread_id();
    if (tid < 0 || tid >= cfg_.max_threads) return false;
    return descriptors_[static_cast<std::size_t>(tid)]->snap_pin.load(
               std::memory_order_relaxed) != kNoSnapshot;
  }

  /// The calling thread's current pin (kNoSnapshot when none).
  std::uint64_t snapshot_version() noexcept;

  /// Reads `cell` at the calling thread's pinned version: current memory
  /// when the owning line is unchanged since the pin, the retained old
  /// value when it is newer. Throws SnapshotMiss when the pinned version
  /// left the bounded ring. Never blocks on a writer whose commit version
  /// is newer than the pin.
  std::uint64_t snapshot_read(const std::atomic<std::uint64_t>& cell);

  /// Version drawn by the calling thread's most recent successful publish
  /// (commit or nontx store). The SI checker records it as the write's
  /// commit timestamp.
  std::uint64_t last_commit_version() noexcept;

  /// Marks the end of a lock section's data publishes: copies the calling
  /// thread's last_commit_version() into a slot that trailing publishes
  /// (writer-flag clears and other lock metadata going through Shared<T>)
  /// do not disturb. The lock layer calls this at its commit points; the
  /// SI checker reads the pinned value via last_section_version() so a
  /// writer's recorded commit timestamp is the version that actually
  /// stamped its data lines.
  void note_section_version() noexcept;

  /// The value pinned by the calling thread's last note_section_version().
  std::uint64_t last_section_version() noexcept;

  /// Current global version clock (free read; the checker and tests use it
  /// to reason about pins).
  std::uint64_t version_clock() const noexcept {
    return gvc_.load(std::memory_order_acquire);
  }

  static constexpr std::uint64_t kNoSnapshot = ~std::uint64_t{0};

  // --- topology-aware coherence (see sim/topology.h) ----------------------
  /// True when the engine tracks per-line last owners (>1 simulated socket,
  /// or EngineConfig::track_line_owners). Shared<T> consults it on the
  /// plain-access path, so it must be a single flag test.
  bool tracks_owners() const noexcept { return track_owners_; }

  /// Plain (uninstrumented) access hook, called by Shared<T> for loads that
  /// bypass the transactional machinery while owner tracking is on: charges
  /// the tiered coherence extra for the line owning `addr` and migrates its
  /// ownership to the calling thread. No-op without tracking.
  void plain_access(const void* addr) {
    if (!track_owners_) return;
    charge_coherence(line_of(reinterpret_cast<std::uintptr_t>(addr)));
  }

  // --- fault-injection surface (src/fault) --------------------------------
  /// Dynamically overrides EngineConfig::spurious_abort_rate; the fault
  /// injector uses this to ramp interrupt storms over a virtual-time window.
  void set_spurious_abort_rate(double rate) noexcept {
    spurious_rate_.store(rate, std::memory_order_relaxed);
  }
  double spurious_abort_rate() const noexcept {
    return spurious_rate_.load(std::memory_order_relaxed);
  }

  /// Per-thread capacity override (fault injection: SMT pressure / cache
  /// pollution jitter). Passing the config profile restores the default.
  void set_thread_capacity(int tid, std::uint32_t read_lines,
                           std::uint32_t write_lines);

  /// Models a syscall on the calling thread: hardware transactions cannot
  /// survive a ring transition, so an in-flight transaction aborts (like an
  /// interrupt, AbortCause::kSpurious); outside a transaction only the time
  /// cost is charged. This is what forces HTM-first readers onto their
  /// uninstrumented fallback.
  void syscall(std::uint64_t cost_cycles);

  EngineStats stats() const;
  void reset_stats();

  /// The "installed HTM", consulted by Shared<T>. Tests and harnesses
  /// install an engine with EngineScope. Resolution is thread-local first,
  /// then the process-wide fallback:
  ///  * a scope installed on the current OS thread (each parallel bench
  ///    worker runs its own Simulator + Engine; fibers share the worker's
  ///    thread, so they see their point's engine with no cross-worker
  ///    races on the global word);
  ///  * otherwise the process-wide engine (the real-thread stress tests
  ///    install one scope on the main thread and spawn std::threads that
  ///    must all see it).
  static Engine* current() noexcept {
    if (t_current != nullptr) return t_current;
    return g_current.load(std::memory_order_acquire);
  }
  static void set_current(Engine* e) noexcept {
    t_current = e;
    g_current.store(e, std::memory_order_release);
  }

 private:
  struct ReadEntry {
    std::uint32_t line;
    std::uint64_t version;
  };
  struct WriteEntry {
    std::atomic<std::uint64_t>* cell;
    std::uint64_t value;
  };

  struct Descriptor {
    int depth = 0;
    bool is_rot = false;
    std::uint64_t rv = 0;  // read-validity timestamp (TL2 "read version")
    std::vector<ReadEntry> reads;
    EpochMap<std::uint32_t> read_lines;   // line -> index into reads
    std::vector<WriteEntry> writes;
    EpochMap<std::uint64_t> write_words;  // cell address -> index into writes
    EpochMap<std::uint32_t> write_lines;  // distinct written lines (capacity)
    std::vector<std::uint32_t> write_line_list;
    // Pre-lock version of write_line_list[i] (sorted), recorded while the
    // commit holds the line; doubles as the rollback image of the lock word.
    std::vector<std::uint64_t> locked_versions;
    Rng rng;
    // Per-thread capacity limits, in distinct lines; normally the config
    // profile, overridden by fault injection (capacity jitter).
    std::atomic<std::uint32_t> cap_read_lines{~0u};
    std::atomic<std::uint32_t> cap_write_lines{~0u};
    // Per-thread event counters (aggregated by Engine::stats()).
    std::uint64_t commits_htm = 0, commits_rot = 0;
    std::uint64_t ab_conflict = 0, ab_capacity = 0, ab_explicit = 0, ab_spurious = 0;
    std::uint64_t line_retries = 0;  // contended commit line acquisitions
    // MVCC: the thread's live snapshot pin (kNoSnapshot = none). Atomic
    // because reclamation on other threads reads it to compute the oldest
    // live snapshot. Liveness only — safety is the per-line floor, which a
    // snapshot reader re-validates inside every ring lookup.
    std::atomic<std::uint64_t> snap_pin{~std::uint64_t{0}};
    std::uint64_t snap_hits = 0, snap_misses = 0;
    std::uint64_t last_wv = 0;  // version of the latest successful publish
    // Snapshot of last_wv taken by note_section_version(): the version of
    // the last publish that belonged to a lock *section body*, before any
    // trailing lock-metadata publish could overwrite last_wv.
    std::uint64_t last_section_wv = 0;
    // True from just before read-set validation until the commit's writes
    // are fully published. On its own cache line: every nontx publish may
    // scan it (the strong-isolation drain) while the owner flips it.
    alignas(64) std::atomic<bool> publishing{false};
  };

  static constexpr std::uint64_t kLockedBit = 1ULL << 63;

  // --- MVCC version buffer (retain_versions > 0 only) ----------------------
  // Per dense line id: a K-slot ring of (word address, old value,
  // replaced_at) entries appended — exclusively while the line's versioned
  // lock is held, so appends are serialized per line — whenever a publish
  // overwrites a word. `replaced_at` is the publishing commit's wv: the
  // recorded value was current for every version < wv. Per-line appends are
  // monotone in wv (the line lock orders the fetch_adds), so a lookup scans
  // oldest→newest for the first entry of its word with replaced_at > pin.
  //
  // Concurrency (the TSan MvccRealThread leg): `seq` is a seqlock —
  // odd while an append is in flight; readers snapshot seq, scan, and
  // retry if it moved. `floor` is the oldest version the ring still fully
  // covers: reclaiming (or failing to retain) an entry raises it, and a
  // lookup whose pin is below the floor (re-validated inside the seqlock
  // window) misses instead of returning a hole-punched history.
  struct VersionSlot {
    std::atomic<std::uint64_t> addr{0};
    std::atomic<std::uint64_t> value{0};
    std::atomic<std::uint64_t> replaced_at{0};
  };
  struct alignas(64) LineHist {
    std::atomic<std::uint64_t> seq{0};    // seqlock generation; odd = mutating
    std::atomic<std::uint64_t> count{0};  // entries ever appended (ring pos)
    std::atomic<std::uint64_t> floor{0};  // history complete for pins >= floor
  };

  /// Records `old_value` (the pre-publish content of `cell`) as the line's
  /// state before version `wv`. Caller holds the line's versioned lock.
  /// `min_pin` caches min_live_pin() across one commit's appends
  /// (kNoSnapshot - 1 = not yet computed).
  void history_append(std::uint32_t line, const std::atomic<std::uint64_t>* cell,
                      std::uint64_t old_value, std::uint64_t wv,
                      std::uint64_t& min_pin);

  /// Oldest live snapshot pin across all threads (kNoSnapshot when none).
  std::uint64_t min_live_pin() const noexcept;

  /// Records `wv` as the calling thread's last publish version (no-op for
  /// threads without a dense id). The SI checker reads it back via
  /// last_commit_version().
  void note_publish(std::uint64_t wv) noexcept;

  // Inline for the same reason as in_tx(): every tx_read/tx_write starts
  // by resolving the calling thread's descriptor.
  Descriptor& self() {
    const int tid = platform::thread_id();
    if (tid < 0 || tid >= cfg_.max_threads) {
      throw std::logic_error(
          "htm::Engine: calling thread has no dense id (use ThreadIdScope "
          "or run under sim::Simulator), or id >= EngineConfig::max_threads");
    }
    return *descriptors_[static_cast<std::size_t>(tid)];
  }

  /// Cache-line → version-table index. Indices are dense ids handed out in
  /// *first-touch order* (lock-free open-addressing map keyed by the line
  /// address), not an address hash: heap addresses vary run to run (ASLR,
  /// allocator history), and hashing them made version-table aliasing — and
  /// therefore abort counts — address-dependent. First-touch order is part
  /// of the deterministic schedule, so with dense ids two runs of the same
  /// seeded workload behave identically, across processes and regardless of
  /// which bench worker thread hosts the point. Ids past the table size
  /// wrap (deterministic aliasing — tests use tiny tables to force it); if
  /// the id map itself fills up, later lines deterministically-insertion-
  /// ordered no more and fall back to the address hash (never hit by the
  /// shipped workloads; the map holds line_id_limit_ lines).
  std::uint32_t line_of(std::uintptr_t addr) noexcept {
    const std::uint64_t key = (addr >> 6) + 1;  // +1: 0 marks an empty slot
    std::size_t s = static_cast<std::size_t>(detail::mix64(key)) & id_mask_;
    for (;;) {
      const std::uint64_t k = line_keys_[s].load(std::memory_order_acquire);
      if (k == key) {
        std::uint32_t id;
        // The id is published right after the key CAS; the spin is only
        // observable from a racing real thread.
        while ((id = line_ids_[s].load(std::memory_order_acquire)) == 0) {
        }
        return (id - 1) & static_cast<std::uint32_t>(table_mask_);
      }
      if (k == 0) {
        if (next_line_id_.load(std::memory_order_relaxed) >= line_id_limit_) {
          return static_cast<std::uint32_t>(detail::mix64(addr >> 6) &
                                            table_mask_);
        }
        std::uint64_t expected = 0;
        if (line_keys_[s].compare_exchange_strong(expected, key,
                                                  std::memory_order_acq_rel)) {
          const std::uint32_t id =
              next_line_id_.fetch_add(1, std::memory_order_relaxed);
          line_ids_[s].store(id + 1, std::memory_order_release);
          return id & static_cast<std::uint32_t>(table_mask_);
        }
        continue;  // lost the claim race: re-inspect the slot
      }
      s = (s + 1) & id_mask_;
    }
  }

  /// Returns the virtual-cycle coherence premium of accessing `line` and
  /// updates the per-line owner word. Only meaningful while track_owners_
  /// is set; bumps the transfer counters.
  ///
  /// Under CostModel::kMigratory (the default) the word is the last
  /// accessor's tid + 1 and `is_write` is ignored: any access from a
  /// different core migrates the line and pays its topology tier —
  /// including read-after-read. The common access pattern for lock metadata
  /// is read-then-modify, and a single-owner word keeps the tracking
  /// deterministic and O(1).
  ///
  /// Under CostModel::kHomeDirectory the word packs {touched, home socket,
  /// sharer-socket mask}: a read from a socket not yet in the mask pays one
  /// fetch-to-shared (remote_cross, remote_node across nodes) and joins it,
  /// subsequent reads from that socket are free; a write pays one
  /// invalidation per *other* sharing socket and collapses the mask to the
  /// writer. First touch sets the home socket and is free either way.
  std::uint64_t coherence_extra(std::uint32_t line, bool is_write) noexcept;

  /// Home-directory leg of coherence_extra (see above). `slot` is the
  /// line's owner word, `tid` the accessor's dense id.
  std::uint64_t home_directory_extra(std::atomic<std::uint32_t>& slot, int tid,
                                     bool is_write) noexcept;

  // Home-directory owner-word layout: bit 31 marks a touched line, bits
  // 24..30 hold the home socket, bits 0..23 the sharer-socket mask (sockets
  // past kSharerBits alias their bit modulo kSharerBits — conservative:
  // aliased sockets appear shared and over-charge, never under-charge).
  static constexpr std::uint32_t kHomeTouchedBit = 1u << 31;
  static constexpr int kSharerBits = 24;
  static constexpr std::uint32_t kSharerMask = (1u << kSharerBits) - 1;

  /// coherence_extra + the virtual-time charge. Callers on paths that
  /// already know the dense line id use this right at the access.
  void charge_coherence(std::uint32_t line, bool is_write = false) {
    const std::uint64_t extra = coherence_extra(line, is_write);
    if (extra > 0) platform::advance(extra);
  }

  void begin_attempt(Descriptor& d, bool rot);
  void commit_attempt(Descriptor& d);  // throws AbortException on conflict
  void commit_publish_perline(Descriptor& d);
  void commit_publish_global(Descriptor& d);
  void rollback_attempt(Descriptor& d, const AbortException& a);
  void rollback_user(Descriptor& d);
  void maybe_spurious(Descriptor& d);
  void extend(Descriptor& d);  // throws AbortException on failure
  [[noreturn]] void abort_internal(AbortCause cause, std::uint8_t code = 0);

  /// CAS-acquires the lock bit on `line`, spinning while it is held
  /// elsewhere. Returns the pre-lock version word. `retries` counts
  /// contended rounds (lock observed held, or CAS lost the race).
  std::uint64_t lock_line(std::uint32_t line, std::uint64_t& retries);

  /// Single pass over all threads' publishing flags: waits until every
  /// commit whose read-set validation may have preceded the caller's
  /// version bump has finished publishing (strong-isolation drain).
  void drain_publishers();

  /// The per-line publish cycle shared by nontx_store/nontx_cas: lock the
  /// line, charge the publish window, store `desired`, release with a
  /// bumped version, drain in-flight commits. When `expected` is non-null
  /// the cell is re-checked under the line lock (CAS semantics) and a
  /// mismatch releases the line untouched and returns false.
  bool nontx_publish(std::uint32_t line, std::atomic<std::uint64_t>& cell,
                     std::uint64_t desired, const std::uint64_t* expected);

  // kGlobalLock mode only: the original centralized TATAS commit lock.
  // Waiters spin through platform::pause(); the winner of a contended
  // handoff is charged contention_unit per spinner (the invalidation-storm
  // model every TATAS lock in the library uses), while holding the lock —
  // which is what makes the centralized protocol's serialization visible
  // in virtual time.
  void commit_lock();
  void commit_unlock() noexcept;

  EngineConfig cfg_;
  std::atomic<double> spurious_rate_;
  std::uint64_t table_mask_;
  std::vector<std::atomic<std::uint64_t>> table_;
  // First-touch line-id map (see line_of): open addressing, keys are
  // (addr >> 6) + 1, values are dense id + 1 (0 = unpublished).
  std::uint64_t id_mask_ = 0;
  std::uint32_t line_id_limit_ = 0;
  std::vector<std::atomic<std::uint64_t>> line_keys_;
  std::vector<std::atomic<std::uint32_t>> line_ids_;
  std::atomic<std::uint32_t> next_line_id_{0};
  std::atomic<std::uint64_t> gvc_{0};
  std::atomic<bool> commit_locked_{false};
  std::atomic<int> commit_waiters_{0};
  std::atomic<int> active_rots_{0};
  // Number of threads currently inside a publish window; lets the drain
  // skip the flag scan entirely on the (overwhelmingly common) idle path.
  std::atomic<std::uint64_t> publish_count_{0};
  // Aggregate counters for paths that may run on threads without a dense
  // id (nontx publishes); bumped only on contended/waiting rounds.
  std::atomic<std::uint64_t> nontx_retries_{0};
  std::atomic<std::uint64_t> drains_{0};
  // Owner tracking (resolved from cfg at construction). owners_ maps the
  // dense line id to last-owner tid + 1 (0 = untouched) and is allocated
  // only when tracking is on — the default engine pays neither the memory
  // nor any branch beyond the track_owners_ test.
  bool track_owners_ = false;
  std::vector<std::atomic<std::uint32_t>> owners_;
  // MVCC state, allocated only when retain_versions > 0 (the default engine
  // pays neither the memory nor any branch beyond the retain_ test).
  std::uint32_t retain_ = 0;
  std::vector<LineHist> line_hist_;
  std::vector<VersionSlot> version_ring_;  // (1 << table_bits) * retain_
  std::atomic<std::uint64_t> overflows_{0};
  // High-water of live retained entries across all rings since the last
  // reset_stats() (EngineStats::ring_occupancy_max).
  std::atomic<std::uint64_t> ring_occ_max_{0};
  // Home-directory model only: sharer-socket invalidations charged to
  // writers (EngineStats::invalidations).
  std::atomic<std::uint64_t> invalidations_{0};
  std::atomic<std::uint64_t> socket_transfers_{0};
  std::atomic<std::uint64_t> cross_transfers_{0};
  std::atomic<std::uint64_t> node_transfers_{0};
  std::vector<std::unique_ptr<Descriptor>> descriptors_;

  static std::atomic<Engine*> g_current;
  static thread_local Engine* t_current;

  friend class EngineScope;
};

/// RAII installer for the calling thread's engine (and the process-wide
/// fallback — see Engine::current()). Both slots are saved and restored, so
/// scopes nest; the global slot is restored with a compare-exchange so a
/// scope on one worker thread never stomps an engine another worker
/// installed concurrently.
class EngineScope {
 public:
  explicit EngineScope(Engine& e) noexcept
      : installed_(&e),
        prev_tl_(Engine::t_current),
        prev_g_(Engine::g_current.load(std::memory_order_acquire)) {
    Engine::t_current = &e;
    Engine::g_current.store(&e, std::memory_order_release);
  }
  ~EngineScope() {
    Engine::t_current = prev_tl_;
    Engine* expected = installed_;
    Engine::g_current.compare_exchange_strong(expected, prev_g_,
                                              std::memory_order_acq_rel);
  }
  EngineScope(const EngineScope&) = delete;
  EngineScope& operator=(const EngineScope&) = delete;

 private:
  Engine* installed_;
  Engine* prev_tl_;
  Engine* prev_g_;
};

}  // namespace sprwl::htm
