// Transactional B+-tree map (uint64 keys/values) over htm::Shared cells.
//
// The in-memory database port the paper benchmarks keeps every table behind
// a B+-tree; range queries over such trees are the prototypical "long
// read-only critical section" SpRWL targets. This is a real, complete tree
// — splits, linked leaves for range scans, root growth — written as plain
// sequential code over Shared cells: concurrency control is the *enclosing
// lock's* job (HTM writers conflict-detect automatically, uninstrumented
// readers rely on the RWLock protocol), exactly how the paper's
// applications use their data structures.
//
// Deletion removes keys from leaves without rebalancing (industry-common
// for concurrent trees; underfull leaves are absorbed by later inserts).
// Nodes come from a pre-allocated pool with per-thread free segments, so
// readers never chase freed memory.
#pragma once

#include <cassert>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "common/aligned.h"
#include "common/cacheline.h"
#include "htm/shared.h"

namespace sprwl::structures {

class BTree {
 public:
  static constexpr int kFanout = 8;  ///< max keys per node

  struct Config {
    std::uint32_t capacity = 1u << 14;  ///< node pool size
    int max_threads = 64;
  };

  explicit BTree(Config cfg)
      : cfg_(cfg),
        pool_(cfg.capacity),
        alloc_(static_cast<std::size_t>(cfg.max_threads)) {
    if (cfg.capacity < 16) throw std::invalid_argument("BTree capacity too small");
    // Node 0 is the initial (empty leaf) root; the rest is split across
    // per-thread bump regions.
    pool_[0].meta.raw_store(make_meta(true, 0));
    pool_[0].next_leaf.raw_store(kNull);
    root_.raw_store(0);
    const std::uint32_t per_thread =
        (cfg.capacity - 1) / static_cast<std::uint32_t>(alloc_.size());
    std::uint32_t cursor = 1;
    for (auto& a : alloc_) {
      a.value.bump.raw_store(cursor);
      a.value.bump_end = cursor + per_thread;
      cursor += per_thread;
    }
  }

  /// Point lookup; call inside a read (or write) critical section.
  bool contains(std::uint64_t key) const {
    const std::uint32_t leaf = descend(key);
    const Node& n = pool_[leaf];
    const int cnt = count_of(n.meta.load());
    for (int i = 0; i < cnt; ++i) {
      if (n.keys[i].load() == key) return true;
    }
    return false;
  }

  /// Point lookup returning the value through `out`.
  bool lookup(std::uint64_t key, std::uint64_t& out) const {
    const std::uint32_t leaf = descend(key);
    const Node& n = pool_[leaf];
    const int cnt = count_of(n.meta.load());
    for (int i = 0; i < cnt; ++i) {
      if (n.keys[i].load() == key) {
        out = n.values[i].load();
        return true;
      }
    }
    return false;
  }

  /// Number of keys in [lo, hi], walking linked leaves — the range query.
  std::uint64_t range_count(std::uint64_t lo, std::uint64_t hi) const {
    std::uint64_t count = 0;
    std::uint32_t leaf = descend(lo);
    while (leaf != kNull) {
      const Node& n = pool_[leaf];
      const int cnt = count_of(n.meta.load());
      bool past_end = false;
      for (int i = 0; i < cnt; ++i) {
        const std::uint64_t k = n.keys[i].load();
        if (k > hi) {
          past_end = true;
          continue;
        }
        if (k >= lo) ++count;
      }
      if (past_end) break;
      leaf = n.next_leaf.load();
    }
    return count;
  }

  /// Insert or update; call inside a write critical section. Returns false
  /// if the key existed (value refreshed) or the node pool is exhausted
  /// (insert dropped).
  bool insert(std::uint64_t key, std::uint64_t value) {
    std::uint32_t path[kMaxDepth];
    int depth = 0;
    std::uint32_t node = root_.load();
    for (;;) {
      const Node& n = pool_[node];
      const std::uint64_t meta = n.meta.load();
      if (is_leaf(meta)) break;
      assert(depth < kMaxDepth);
      path[depth++] = node;
      node = child_for(n, meta, key);
    }

    Node& leaf = pool_[node];
    std::uint64_t meta = leaf.meta.load();
    int cnt = count_of(meta);
    for (int i = 0; i < cnt; ++i) {
      if (leaf.keys[i].load() == key) {
        leaf.values[i].store(value);
        return false;
      }
    }

    if (cnt == kFanout) {
      // Reserve every node a worst-case split chain could need before
      // mutating anything: a failed mid-split allocation would otherwise
      // leave keys reachable through the leaf chain but not the tree.
      if (!can_alloc(static_cast<std::uint32_t>(depth) + 2)) return false;
      if (!split_leaf(node, path, depth)) return false;  // unreachable now
      // Re-descend one level: the key now belongs to one of the halves.
      const Node& old_leaf = pool_[node];
      const std::uint32_t right = old_leaf.next_leaf.load();
      const std::uint64_t split_key = pool_[right].keys[0].load();
      node = key < split_key ? node : right;
      Node& target = pool_[node];
      meta = target.meta.load();
      cnt = count_of(meta);
      insert_into_leaf(target, cnt, key, value);
      return true;
    }
    insert_into_leaf(leaf, cnt, key, value);
    return true;
  }

  /// Remove; call inside a write critical section.
  bool erase(std::uint64_t key) {
    const std::uint32_t leaf_idx = descend(key);
    Node& leaf = pool_[leaf_idx];
    const std::uint64_t meta = leaf.meta.load();
    const int cnt = count_of(meta);
    for (int i = 0; i < cnt; ++i) {
      if (leaf.keys[i].load() == key) {
        // Shift the tail left; no rebalancing (see header comment).
        for (int j = i; j + 1 < cnt; ++j) {
          leaf.keys[j].store(leaf.keys[j + 1].load());
          leaf.values[j].store(leaf.values[j + 1].load());
        }
        leaf.meta.store(make_meta(true, cnt - 1));
        return true;
      }
    }
    return false;
  }

  // --- raw verification helpers (quiescent state only) ---------------------

  std::size_t raw_size() const {
    std::size_t total = 0;
    std::uint32_t leaf = raw_leftmost_leaf();
    while (leaf != kNull) {
      total += static_cast<std::size_t>(count_of(pool_[leaf].meta.raw_load()));
      leaf = pool_[leaf].next_leaf.raw_load();
    }
    return total;
  }

  /// Structural invariants: keys sorted and unique along the leaf chain,
  /// inner separators consistent with subtree contents.
  bool raw_validate() const {
    std::uint64_t prev = 0;
    bool first = true;
    std::uint32_t leaf = raw_leftmost_leaf();
    while (leaf != kNull) {
      const Node& n = pool_[leaf];
      const int cnt = count_of(n.meta.raw_load());
      for (int i = 0; i < cnt; ++i) {
        const std::uint64_t k = n.keys[i].raw_load();
        if (!first && k <= prev) return false;
        prev = k;
        first = false;
      }
      leaf = n.next_leaf.raw_load();
    }
    return true;
  }

  const Config& config() const noexcept { return cfg_; }

 private:
  static constexpr std::uint32_t kNull = 0xffffffffu;
  static constexpr int kMaxDepth = 16;

  // meta word: bit0 = leaf flag, bits 1..7 = key count.
  static constexpr std::uint64_t make_meta(bool leaf, int count) noexcept {
    return (static_cast<std::uint64_t>(count) << 1) | (leaf ? 1 : 0);
  }
  static constexpr bool is_leaf(std::uint64_t meta) noexcept { return (meta & 1) != 0; }
  static constexpr int count_of(std::uint64_t meta) noexcept {
    return static_cast<int>(meta >> 1);
  }

  struct Node {
    htm::Shared<std::uint64_t> meta;
    htm::Shared<std::uint64_t> keys[kFanout];
    htm::Shared<std::uint64_t> values[kFanout];      // leaves only
    htm::Shared<std::uint32_t> children[kFanout + 1];  // inner only
    htm::Shared<std::uint32_t> next_leaf;              // leaves only
  };

  struct ThreadAlloc {
    htm::Shared<std::uint32_t> bump;
    std::uint32_t bump_end = 0;
  };

  /// Inner-node routing: child i covers keys < keys[i]; last child covers
  /// the rest.
  static std::uint32_t child_for(const Node& n, std::uint64_t meta,
                                 std::uint64_t key) {
    const int cnt = count_of(meta);
    for (int i = 0; i < cnt; ++i) {
      if (key < n.keys[i].load()) return n.children[i].load();
    }
    return n.children[cnt].load();
  }

  std::uint32_t descend(std::uint64_t key) const {
    std::uint32_t node = root_.load();
    for (;;) {
      const Node& n = pool_[node];
      const std::uint64_t meta = n.meta.load();
      if (is_leaf(meta)) return node;
      node = child_for(n, meta, key);
    }
  }

  std::uint32_t raw_leftmost_leaf() const {
    std::uint32_t node = root_.raw_load();
    while (!is_leaf(pool_[node].meta.raw_load())) {
      node = pool_[node].children[0].raw_load();
    }
    return node;
  }

  ThreadAlloc& my_alloc() {
    const int tid = platform::thread_id();
    return alloc_[static_cast<std::size_t>(tid >= 0 ? tid : 0) % alloc_.size()]
        .value;
  }

  bool can_alloc(std::uint32_t n) {
    ThreadAlloc& a = my_alloc();
    return a.bump.load() + n <= a.bump_end;
  }

  std::uint32_t alloc_node() {
    ThreadAlloc& a = my_alloc();
    const std::uint32_t b = a.bump.load();
    if (b >= a.bump_end) return kNull;
    a.bump.store(b + 1);
    return b;
  }

  static void insert_into_leaf(Node& leaf, int cnt, std::uint64_t key,
                               std::uint64_t value) {
    int pos = cnt;
    while (pos > 0 && leaf.keys[pos - 1].load() > key) {
      leaf.keys[pos].store(leaf.keys[pos - 1].load());
      leaf.values[pos].store(leaf.values[pos - 1].load());
      --pos;
    }
    leaf.keys[pos].store(key);
    leaf.values[pos].store(value);
    leaf.meta.store(make_meta(true, cnt + 1));
  }

  /// Splits the full leaf `node`, pushing the separator into the parent
  /// chain (splitting parents as needed, growing the root last). Returns
  /// false (tree unchanged in effect) when the pool is exhausted.
  bool split_leaf(std::uint32_t node, const std::uint32_t* path, int depth) {
    const std::uint32_t right_idx = alloc_node();
    if (right_idx == kNull) return false;
    Node& left = pool_[node];
    Node& right = pool_[right_idx];
    constexpr int kHalf = kFanout / 2;
    for (int i = 0; i < kHalf; ++i) {
      right.keys[i].store(left.keys[kHalf + i].load());
      right.values[i].store(left.values[kHalf + i].load());
    }
    right.meta.store(make_meta(true, kHalf));
    right.next_leaf.store(left.next_leaf.load());
    left.next_leaf.store(right_idx);
    left.meta.store(make_meta(true, kHalf));
    return push_up(path, depth, right.keys[0].load(), node, right_idx);
  }

  bool push_up(const std::uint32_t* path, int depth, std::uint64_t sep,
               std::uint32_t left_child, std::uint32_t right_child) {
    if (depth == 0) return grow_root(sep, left_child, right_child);
    const std::uint32_t parent_idx = path[depth - 1];
    Node& parent = pool_[parent_idx];
    const std::uint64_t meta = parent.meta.load();
    const int cnt = count_of(meta);
    if (cnt < kFanout) {
      // Insert separator + right child at the routing position.
      int pos = cnt;
      while (pos > 0 && parent.keys[pos - 1].load() > sep) {
        parent.keys[pos].store(parent.keys[pos - 1].load());
        parent.children[pos + 1].store(parent.children[pos].load());
        --pos;
      }
      parent.keys[pos].store(sep);
      parent.children[pos + 1].store(right_child);
      parent.meta.store(make_meta(false, cnt + 1));
      return true;
    }
    // Parent full: split it, then retry the insertion one level up. The
    // middle key moves up; keys right of it (and their children) move to
    // the new node.
    const std::uint32_t right_idx = alloc_node();
    if (right_idx == kNull) return false;
    Node& right = pool_[right_idx];
    constexpr int kHalf = kFanout / 2;
    const std::uint64_t mid_key = parent.keys[kHalf].load();
    int rcnt = 0;
    for (int i = kHalf + 1; i < kFanout; ++i, ++rcnt) {
      right.keys[rcnt].store(parent.keys[i].load());
      right.children[rcnt].store(parent.children[i].load());
    }
    right.children[rcnt].store(parent.children[kFanout].load());
    right.meta.store(make_meta(false, rcnt));
    parent.meta.store(make_meta(false, kHalf));
    if (!push_up(path, depth - 1, mid_key, parent_idx, right_idx)) return false;
    // Now route the pending separator into the correct half.
    Node& target = sep < mid_key ? parent : right;
    const std::uint64_t tmeta = target.meta.load();
    const int tcnt = count_of(tmeta);
    int pos = tcnt;
    while (pos > 0 && target.keys[pos - 1].load() > sep) {
      target.keys[pos].store(target.keys[pos - 1].load());
      target.children[pos + 1].store(target.children[pos].load());
      --pos;
    }
    target.keys[pos].store(sep);
    target.children[pos + 1].store(right_child);
    target.meta.store(make_meta(false, tcnt + 1));
    (void)left_child;
    return true;
  }

  bool grow_root(std::uint64_t sep, std::uint32_t left_child,
                 std::uint32_t right_child) {
    const std::uint32_t new_root = alloc_node();
    if (new_root == kNull) return false;
    Node& r = pool_[new_root];
    r.keys[0].store(sep);
    r.children[0].store(left_child);
    r.children[1].store(right_child);
    r.meta.store(make_meta(false, 1));
    root_.store(new_root);
    return true;
  }

  Config cfg_;
  htm::Shared<std::uint32_t> root_;
  aligned_vector<Node> pool_;
  std::vector<CacheLinePadded<ThreadAlloc>> alloc_;
};

}  // namespace sprwl::structures
