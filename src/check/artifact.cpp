#include "check/artifact.h"

#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace sprwl::check {
namespace {

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// Locates `"key"` and returns the index just past the following ':', or
// npos. All keys in the artifact are unique across nesting levels, so a
// flat scan is unambiguous.
std::size_t after_key(const std::string& s, const std::string& key) {
  const std::size_t k = s.find("\"" + key + "\"");
  if (k == std::string::npos) return std::string::npos;
  const std::size_t colon = s.find(':', k);
  if (colon == std::string::npos) return std::string::npos;
  return colon + 1;
}

bool parse_u64(const std::string& s, const std::string& key,
               std::uint64_t* out) {
  std::size_t i = after_key(s, key);
  if (i == std::string::npos) return false;
  while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
  std::size_t end = i;
  while (end < s.size() && std::isdigit(static_cast<unsigned char>(s[end])))
    ++end;
  if (end == i) return false;
  *out = std::stoull(s.substr(i, end - i));
  return true;
}

bool parse_int(const std::string& s, const std::string& key, int* out) {
  std::uint64_t v = 0;
  if (!parse_u64(s, key, &v)) return false;
  *out = static_cast<int>(v);
  return true;
}

bool parse_string(const std::string& s, const std::string& key,
                  std::string* out) {
  std::size_t i = after_key(s, key);
  if (i == std::string::npos) return false;
  while (i < s.size() && s[i] != '"') ++i;
  if (i >= s.size()) return false;
  ++i;
  std::string val;
  while (i < s.size() && s[i] != '"') {
    if (s[i] == '\\' && i + 1 < s.size()) {
      ++i;
      switch (s[i]) {
        case 'n': val += '\n'; break;
        case 't': val += '\t'; break;
        case 'u':
          if (i + 4 < s.size()) {
            val += static_cast<char>(std::stoi(s.substr(i + 1, 4), nullptr, 16));
            i += 4;
          }
          break;
        default: val += s[i];
      }
    } else {
      val += s[i];
    }
    ++i;
  }
  *out = val;
  return true;
}

bool parse_int_array(const std::string& s, const std::string& key,
                     std::vector<int>* out) {
  std::size_t i = after_key(s, key);
  if (i == std::string::npos) return false;
  while (i < s.size() && s[i] != '[') ++i;
  const std::size_t close = s.find(']', i);
  if (i >= s.size() || close == std::string::npos) return false;
  out->clear();
  ++i;
  while (i < close) {
    while (i < close && !std::isdigit(static_cast<unsigned char>(s[i]))) ++i;
    std::size_t end = i;
    while (end < close && std::isdigit(static_cast<unsigned char>(s[end])))
      ++end;
    if (end > i) out->push_back(std::stoi(s.substr(i, end - i)));
    i = end + 1;
  }
  return true;
}

bool parse_bool(const std::string& s, const std::string& key, bool* out) {
  std::size_t i = after_key(s, key);
  if (i == std::string::npos) return false;
  while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
  if (s.compare(i, 4, "true") == 0) {
    *out = true;
    return true;
  }
  if (s.compare(i, 5, "false") == 0) {
    *out = false;
    return true;
  }
  return false;
}

bool parse_u64_array(const std::string& s, const std::string& key,
                     std::vector<std::uint64_t>* out) {
  std::size_t i = after_key(s, key);
  if (i == std::string::npos) return false;
  while (i < s.size() && s[i] != '[') ++i;
  const std::size_t close = s.find(']', i);
  if (i >= s.size() || close == std::string::npos) return false;
  out->clear();
  ++i;
  while (i < close) {
    while (i < close && !std::isdigit(static_cast<unsigned char>(s[i]))) ++i;
    std::size_t end = i;
    while (end < close && std::isdigit(static_cast<unsigned char>(s[end])))
      ++end;
    if (end > i) out->push_back(std::stoull(s.substr(i, end - i)));
    i = end + 1;
  }
  return true;
}

}  // namespace

std::string write_artifact(const ReproArtifact& a, const std::string& dir) {
  std::string path = dir.empty() ? "." : dir;
  path += "/CHECK_repro_" + std::to_string(a.seed) + ".json";
  std::ostringstream os;
  os << "{\n"
     << "  \"lock\": \"" << escape(a.lock) << "\",\n"
     << "  \"policy\": \"" << escape(a.policy) << "\",\n"
     << "  \"seed\": " << a.seed << ",\n"
     << "  \"workload\": {\n"
     << "    \"threads\": " << a.workload.threads << ",\n"
     << "    \"writers\": " << a.workload.writers << ",\n"
     << "    \"ops_per_thread\": " << a.workload.ops_per_thread << ",\n"
     << "    \"cells\": " << a.workload.cells << ",\n"
     << "    \"max_decisions\": " << a.workload.max_decisions << ",\n"
     << "    \"no_progress_bound\": " << a.workload.no_progress_bound << ",\n"
     << "    \"timed_reads\": " << (a.workload.timed_reads ? "true" : "false")
     << ",\n"
     << "    \"read_deadlines\": [";
  for (std::size_t i = 0; i < a.workload.read_deadlines.size(); ++i) {
    if (i != 0) os << ", ";
    os << a.workload.read_deadlines[i];
  }
  os << "],\n"
     << "    \"snapshot_reads\": "
     << (a.workload.snapshot_reads ? "true" : "false") << ",\n"
     << "    \"retain_versions\": " << a.workload.retain_versions << ",\n"
     << "    \"broken_snapshot\": "
     << (a.workload.broken_snapshot ? "true" : "false") << "\n"
     << "  },\n"
     << "  \"violation\": \"" << escape(a.violation) << "\",\n"
     << "  \"choices\": [";
  for (std::size_t i = 0; i < a.choices.size(); ++i) {
    if (i != 0) os << ", ";
    os << a.choices[i];
  }
  os << "]\n}\n";
  std::ofstream f(path, std::ios::trunc);
  if (!f) throw std::runtime_error("cannot open artifact file: " + path);
  f << os.str();
  f.flush();
  if (!f) throw std::runtime_error("failed writing artifact: " + path);
  return path;
}

bool read_artifact(const std::string& path, ReproArtifact* out) {
  std::ifstream f(path);
  if (!f) return false;
  std::ostringstream buf;
  buf << f.rdbuf();
  const std::string s = buf.str();

  ReproArtifact a;
  std::uint64_t md = 0;
  if (!parse_string(s, "lock", &a.lock)) return false;
  if (!parse_string(s, "policy", &a.policy)) return false;
  if (!parse_u64(s, "seed", &a.seed)) return false;
  if (!parse_int(s, "threads", &a.workload.threads)) return false;
  if (!parse_int(s, "writers", &a.workload.writers)) return false;
  if (!parse_int(s, "ops_per_thread", &a.workload.ops_per_thread)) return false;
  if (!parse_int(s, "cells", &a.workload.cells)) return false;
  if (!parse_u64(s, "max_decisions", &md)) return false;
  a.workload.max_decisions = static_cast<std::size_t>(md);
  if (!parse_int(s, "no_progress_bound", &a.workload.no_progress_bound))
    return false;
  // Deadline fields are optional (absent in artifacts written before the
  // timed workloads existed); defaults mean "untimed".
  parse_bool(s, "timed_reads", &a.workload.timed_reads);
  parse_u64_array(s, "read_deadlines", &a.workload.read_deadlines);
  // Snapshot fields are likewise optional; defaults mean "no snapshots".
  parse_bool(s, "snapshot_reads", &a.workload.snapshot_reads);
  std::uint64_t rv = 0;
  if (parse_u64(s, "retain_versions", &rv)) {
    a.workload.retain_versions = static_cast<std::uint32_t>(rv);
  }
  parse_bool(s, "broken_snapshot", &a.workload.broken_snapshot);
  if (!parse_string(s, "violation", &a.violation)) return false;
  if (!parse_int_array(s, "choices", &a.choices)) return false;
  *out = a;
  return true;
}

}  // namespace sprwl::check
