#include "check/linearizability.h"

#include <algorithm>
#include <bit>
#include <unordered_set>
#include <vector>

namespace sprwl::check {
namespace {

std::string op_str(const OpRecord& op) {
  return std::string(op.is_write ? "write" : "read") + "(tid=" +
         std::to_string(op.tid) + ", value=" + std::to_string(op.value) +
         ", [" + std::to_string(op.invoke) + "," + std::to_string(op.response) +
         "])";
}

}  // namespace

LinResult check_counter_history(const History& h) {
  LinResult r;

  // Structural checks first: they produce sharper diagnostics than a bare
  // "no linearization found" and they catch most real violations (torn
  // reads and lost updates) without any search.
  for (const OpRecord& op : h) {
    if (op.torn) {
      return {false, "torn read: " + op_str(op) + " saw cells disagree", 0};
    }
  }
  std::uint64_t writes = 0;
  for (const OpRecord& op : h) {
    if (op.is_write) ++writes;
  }
  std::vector<bool> value_seen(writes + 1, false);
  for (const OpRecord& op : h) {
    if (!op.is_write) continue;
    if (op.value == 0 || op.value > writes) {
      return {false,
              "write stored out-of-range value (lost update): " + op_str(op),
              0};
    }
    if (value_seen[op.value]) {
      return {false,
              "two writes stored the same value (lost update): " + op_str(op),
              0};
    }
    value_seen[op.value] = true;
  }

  // Commutativity reduction: a read overlapping no write has exactly one
  // legal value — the number of writes that fully preceded it.
  std::vector<const OpRecord*> dfs_ops;
  for (const OpRecord& op : h) {
    if (op.is_write) {
      dfs_ops.push_back(&op);
      continue;
    }
    bool overlaps_write = false;
    std::uint64_t writes_before = 0;
    for (const OpRecord& w : h) {
      if (!w.is_write) continue;
      if (w.invoke < op.response && op.invoke < w.response) {
        overlaps_write = true;
        break;
      }
      if (w.response < op.invoke) ++writes_before;
    }
    if (overlaps_write) {
      dfs_ops.push_back(&op);
    } else if (op.value != writes_before) {
      return {false,
              "read overlapping no write returned " + std::to_string(op.value) +
                  ", expected " + std::to_string(writes_before) + ": " +
                  op_str(op),
              0};
    }
  }

  const std::size_t n = dfs_ops.size();
  if (n > 64) {
    return {false, "history too large for the mask-memoized checker (" +
                       std::to_string(n) + " > 64 ops)",
            0};
  }
  if (n == 0) return r;
  const std::uint64_t full =
      n == 64 ? ~0ULL : ((1ULL << n) - 1);

  // Wing–Gong DFS with memoization on the linearized-set mask. The counter
  // value in a state equals the number of writes in the mask, so the mask
  // fully identifies the state and a visited set prunes re-expansion.
  std::vector<std::uint64_t> stack{0};
  std::unordered_set<std::uint64_t> visited{0};
  while (!stack.empty()) {
    const std::uint64_t mask = stack.back();
    stack.pop_back();
    ++r.states_visited;
    if (mask == full) return r;
    // Minimality: a pending op may linearize next only if it was invoked
    // before every pending response (otherwise some op finished entirely
    // before it began, and real-time order pins it earlier).
    std::uint64_t min_resp = ~0ULL;
    for (std::size_t i = 0; i < n; ++i) {
      if ((mask >> i) & 1) continue;
      min_resp = std::min(min_resp, dfs_ops[i]->response);
    }
    std::uint64_t lin_writes = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (((mask >> i) & 1) && dfs_ops[i]->is_write) ++lin_writes;
    }
    for (std::size_t i = 0; i < n; ++i) {
      if ((mask >> i) & 1) continue;
      const OpRecord& op = *dfs_ops[i];
      if (op.invoke > min_resp) continue;  // not minimal
      const bool legal = op.is_write ? op.value == lin_writes + 1
                                     : op.value == lin_writes;
      if (!legal) continue;
      const std::uint64_t next = mask | (1ULL << i);
      if (!visited.insert(next).second) continue;
      stack.push_back(next);
    }
  }
  r.ok = false;
  r.reason = "no linearization found (" + std::to_string(r.states_visited) +
             " states searched)";
  return r;
}

}  // namespace sprwl::check
