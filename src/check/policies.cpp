#include "check/policies.h"

#include <algorithm>
#include <stdexcept>

#include "common/rng.h"

namespace sprwl::check {

// --- PCT --------------------------------------------------------------------

PctPolicy::PctPolicy(std::uint64_t seed, int depth,
                     std::size_t expected_decisions)
    : seed_(seed),
      depth_(depth < 1 ? 1 : depth),
      expected_decisions_(expected_decisions == 0 ? 1 : expected_decisions) {}

void PctPolicy::begin_run(int nfibers) {
  ++run_;
  // One deterministic stream per (base seed, run index): a failing run is
  // pinned by its run index alone.
  Rng rng(seed_ + run_ * 0x9E3779B97F4A7C15ULL);
  prio_.resize(static_cast<std::size_t>(nfibers));
  for (int i = 0; i < nfibers; ++i) prio_[static_cast<std::size_t>(i)] = i;
  for (std::size_t i = prio_.size(); i > 1; --i) {
    std::swap(prio_[i - 1], prio_[static_cast<std::size_t>(rng.next_below(i))]);
  }
  change_points_.clear();
  for (int k = 1; k < depth_; ++k) {
    change_points_.push_back(
        static_cast<std::size_t>(rng.next_below(expected_decisions_)));
  }
  std::sort(change_points_.begin(), change_points_.end());
  cp_next_ = 0;
  demote_next_ = -1;
}

int PctPolicy::pick(const sim::PickView& view) {
  auto leader = [&]() -> int {
    int best = -1;
    std::int64_t best_prio = 0;
    for (int i = 0; i < view.count; ++i) {
      const int f = view.ops[i].fiber;
      const std::int64_t p = prio_[static_cast<std::size_t>(f)];
      if (best < 0 || p > best_prio) {
        best = f;
        best_prio = p;
      }
    }
    return best;
  };
  while (cp_next_ < change_points_.size() &&
         change_points_[cp_next_] <= view.decision) {
    // Change point: demote the current leader below every other fiber so
    // control transfers exactly once per sampled point.
    if (change_points_[cp_next_] == view.decision) {
      prio_[static_cast<std::size_t>(leader())] = demote_next_--;
    }
    ++cp_next_;
  }
  return leader();
}

// --- bounded-exhaustive DFS with sleep sets ---------------------------------

DfsPolicy::DfsPolicy(bool sleep_sets) : sleep_sets_(sleep_sets) {}

void DfsPolicy::begin_run(int /*nfibers*/) {
  depth_ = 0;
  pruned_ = false;
}

bool DfsPolicy::independent(const sim::PendingOp& a, const sim::PendingOp& b) {
  // Conservative relation: only ops tagged with *distinct* lock objects
  // provably commute. Untagged ops (pauses, starts) depend on everything.
  return a.obj != 0 && b.obj != 0 && a.obj != b.obj;
}

const sim::PendingOp* DfsPolicy::find_op(const Node& n, int fiber) const {
  for (const sim::PendingOp& op : n.ops) {
    if (op.fiber == fiber) return &op;
  }
  return nullptr;
}

int DfsPolicy::select(const Node& n) const {
  for (const sim::PendingOp& op : n.ops) {
    if (std::find(n.sleep.begin(), n.sleep.end(), op.fiber) != n.sleep.end())
      continue;
    if (std::find(n.tried.begin(), n.tried.end(), op.fiber) != n.tried.end())
      continue;
    return op.fiber;  // ops are ordered by fiber id: lowest-id first
  }
  return -1;
}

int DfsPolicy::pick(const sim::PickView& view) {
  if (depth_ < path_.size()) {
    // Replaying the committed prefix of this branch. Determinism contract:
    // the eligible set must match what the previous runs observed here.
    Node& n = path_[depth_];
    if (static_cast<int>(n.ops.size()) != view.count) {
      throw std::logic_error(
          "DfsPolicy: nondeterministic eligible set while replaying prefix");
    }
    ++depth_;
    return n.chosen;
  }
  // Frontier: record a new node.
  Node n;
  n.ops.assign(view.ops, view.ops + view.count);
  if (sleep_sets_ && !path_.empty()) {
    const Node& parent = path_[depth_ - 1];
    const sim::PendingOp* chosen_op = find_op(parent, parent.chosen);
    auto inherit = [&](int fiber) {
      const sim::PendingOp* op = find_op(parent, fiber);
      // A sleeping op stays asleep only if it commutes with the executed
      // op and is still parked identically at the child.
      if (op == nullptr || chosen_op == nullptr) return;
      if (!independent(*op, *chosen_op)) return;
      const sim::PendingOp* now = find_op(n, fiber);
      if (now == nullptr || now->kind != op->kind || now->obj != op->obj)
        return;
      n.sleep.push_back(fiber);
    };
    for (int f : parent.sleep) inherit(f);
    for (int f : parent.tried) inherit(f);
  }
  n.chosen = select(n);
  const int chosen = n.chosen;
  path_.push_back(std::move(n));
  ++depth_;
  if (chosen == -1) {
    // Every eligible op is asleep: every schedule below this node is a
    // reordering of one already explored. Prune.
    pruned_ = true;
    return kCancelRun;
  }
  return chosen;
}

bool DfsPolicy::advance() {
  depth_ = 0;
  while (!path_.empty()) {
    Node& n = path_.back();
    if (n.chosen != -1) {
      n.tried.push_back(n.chosen);
      n.chosen = -1;
    }
    n.chosen = select(n);
    if (n.chosen != -1) return true;
    path_.pop_back();
  }
  return false;
}

std::vector<int> DfsPolicy::choices() const {
  std::vector<int> out;
  out.reserve(path_.size());
  for (const Node& n : path_) {
    if (n.chosen == -1) break;
    out.push_back(n.chosen);
  }
  return out;
}

// --- replay -----------------------------------------------------------------

ReplayPolicy::ReplayPolicy(std::vector<int> choices)
    : choices_(std::move(choices)) {}

void ReplayPolicy::begin_run(int /*nfibers*/) {
  next_ = 0;
  diverged_ = false;
}

int ReplayPolicy::pick(const sim::PickView& view) {
  auto eligible = [&](int fiber) {
    for (int i = 0; i < view.count; ++i) {
      if (view.ops[i].fiber == fiber) return true;
    }
    return false;
  };
  while (next_ < choices_.size()) {
    const int c = choices_[next_++];
    if (eligible(c)) return c;
    diverged_ = true;  // minimized/edited trace: skip inapplicable entries
  }
  return view.ops[0].fiber;  // past the trace: deterministic completion
}

}  // namespace sprwl::check
