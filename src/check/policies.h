// Schedule policies for the controlled simulator: PCT, bounded-exhaustive
// DFS with sleep sets, and trace replay.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/schedule_policy.h"

namespace sprwl::check {

/// PCT — Probabilistic Concurrency Testing (Burckhardt et al., ASPLOS'10).
/// Each run assigns the fibers a random priority permutation and samples
/// d-1 priority *change points* over the expected decision-count range; the
/// highest-priority eligible fiber always runs, and at a change point the
/// current leader is demoted below everyone. For a buggy interleaving of
/// depth d, one run finds it with probability >= 1/(n * k^(d-1)) — which a
/// modest seed matrix turns into near-certainty for the bounded configs
/// the checker targets. Reseeded deterministically per run from the base
/// seed (SPRWL_SEED discipline), so any failing run replays from
/// (seed, run_index).
class PctPolicy : public sim::SchedulePolicy {
 public:
  explicit PctPolicy(std::uint64_t seed, int depth = 3,
                     std::size_t expected_decisions = 256);

  void begin_run(int nfibers) override;
  int pick(const sim::PickView& view) override;

  std::uint64_t runs_started() const noexcept { return run_; }

 private:
  std::uint64_t seed_;
  int depth_;
  std::size_t expected_decisions_;
  std::uint64_t run_ = 0;
  std::vector<std::int64_t> prio_;          // fiber id -> priority (higher wins)
  std::vector<std::size_t> change_points_;  // decision indices, sorted
  std::size_t cp_next_ = 0;                 // next unapplied change point
  std::int64_t demote_next_ = 0;            // next below-everyone priority
};

/// Bounded-exhaustive stateless DFS over the schedule tree, with sleep-set
/// pruning (Godefroid). The policy is driven across many runs: each run
/// replays the current prefix of choices and extends it; advance() shifts
/// to the next unexplored branch after the run completes. Two ops are
/// treated as independent iff both carry a nonzero obj tag and the tags
/// differ (distinct lock instances); everything else is conservatively
/// dependent, so pruning never hides a schedule that could behave
/// differently. A run whose frontier is fully covered by the sleep set is
/// abandoned via kCancelRun (counted as pruned, not explored).
class DfsPolicy : public sim::SchedulePolicy {
 public:
  explicit DfsPolicy(bool sleep_sets = true);

  void begin_run(int nfibers) override;
  int pick(const sim::PickView& view) override;

  /// Call after each run() returns: pops exhausted suffixes and lines up
  /// the next branch. Returns false when the whole tree is explored.
  bool advance();

  /// True when the run just executed was abandoned by a sleep-set prune.
  bool pruned() const noexcept { return pruned_; }

  /// The choice prefix (fiber ids) of the schedule just executed.
  std::vector<int> choices() const;

 private:
  struct Node {
    std::vector<sim::PendingOp> ops;  // eligible set observed at this depth
    std::vector<int> sleep;           // fiber ids asleep at this node
    std::vector<int> tried;           // fiber ids fully explored here
    int chosen = -1;                  // branch taken on the current run
  };

  static bool independent(const sim::PendingOp& a, const sim::PendingOp& b);
  const sim::PendingOp* find_op(const Node& n, int fiber) const;
  int select(const Node& n) const;  // lowest-id eligible not asleep/tried

  bool sleep_sets_;
  std::vector<Node> path_;
  std::size_t depth_ = 0;   // current depth within this run
  bool pruned_ = false;
};

/// Replays a recorded sequence of fiber-id choices. Entries that are not
/// eligible at their turn are skipped (keeps minimized traces usable);
/// after the trace is exhausted the lowest-id eligible fiber runs, so the
/// run always terminates deterministically. diverged() reports whether any
/// entry had to be skipped.
class ReplayPolicy : public sim::SchedulePolicy {
 public:
  explicit ReplayPolicy(std::vector<int> choices);

  void begin_run(int nfibers) override;
  int pick(const sim::PickView& view) override;

  bool diverged() const noexcept { return diverged_; }

 private:
  std::vector<int> choices_;
  std::size_t next_ = 0;
  bool diverged_ = false;
};

}  // namespace sprwl::check
