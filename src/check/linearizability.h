// Wing–Gong linearizability checking against the sequential rw-lock spec.
//
// The checked object is a multi-cell counter: a write under the write lock
// reads the counter and stores value+1 to every cell; a read under the read
// lock returns the counter (and flags "torn" if the cells disagreed). Its
// sequential spec: the i-th linearized write stores i, and a read returns
// the number of writes linearized before it.
//
// A history is linearizable iff there is a total order of operations,
// consistent with the real-time partial order (op a before op b whenever
// a.response < b.invoke), that satisfies that spec. We search for one with
// the Wing–Gong DFS: repeatedly linearize some *minimal* pending operation
// (one invoked before every pending response), with memoization on the set
// of linearized ops — for this spec the counter value is determined by the
// set's write count, so the set alone identifies the search state.
//
// Two rw-lock-specific reductions keep the search trivial in practice:
//  * writes are totally ordered by their values (the i-th write must store
//    i), so the DFS never branches across writes;
//  * a read that overlaps no write commutes with adjacent reads and has
//    exactly one legal value (the number of writes that responded before
//    its invoke) — checked directly and excluded from the DFS.
#pragma once

#include <cstdint>
#include <string>

#include "check/history.h"

namespace sprwl::check {

struct LinResult {
  bool ok = true;
  std::string reason;               ///< empty when ok
  std::uint64_t states_visited = 0; ///< DFS states (0 if rejected structurally)
};

/// Checks `h` against the sequential counter spec. Histories with more
/// than 64 DFS-relevant operations are rejected (the checker is meant for
/// the bounded configs the explorer runs; the mask memoization is 64-bit).
LinResult check_counter_history(const History& h);

}  // namespace sprwl::check
