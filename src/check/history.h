// Operation histories for the linearizability checker.
//
// The harness (harness.h) records one OpRecord per completed lock-protected
// operation against the shared counter object (see linearizability.h for
// the sequential spec). Invoke/response stamps come from a single logical
// event counter bumped inside the fibers — under controlled scheduling that
// counter is a deterministic function of the decision sequence, so a
// replayed schedule reproduces the history bit-identically.
#pragma once

#include <cstdint>
#include <vector>

namespace sprwl::check {

struct OpRecord {
  int tid = 0;
  bool is_write = false;
  std::uint64_t invoke = 0;    ///< logical stamp before the lock call
  std::uint64_t response = 0;  ///< logical stamp after the lock call returned
  std::uint64_t value = 0;     ///< counter value read (reads) / written (writes)
  bool torn = false;           ///< reader saw cells disagree mid-section
  /// Read ran as a pinned snapshot section (core::SpRWLock::read_snapshot).
  /// Snapshot reads are judged by the SI spec (si.h), not Wing–Gong: they
  /// deliberately return stale-but-consistent values, which no legal
  /// linearization against real-time order admits.
  bool is_snapshot = false;
  /// Engine version-clock stamp: the snapshot pin (snapshot reads) or the
  /// commit version of the section's last publish (writes). 0 otherwise.
  std::uint64_t version = 0;
};

using History = std::vector<OpRecord>;

}  // namespace sprwl::check
