// Named lock configurations for the checker: every lock in the library
// (all src/locks/ baselines, the elision locks, and the SpRWL variants)
// exposed as a RunFn over the standard counter workload, so tests, CI and
// the check_schedules CLI address them uniformly by name.
#pragma once

#include <string>
#include <vector>

#include "check/harness.h"

namespace sprwl::check {

/// Production lock names, in display order: SpRWL (kFull), SpRWL-unins
/// (uninstrumented readers), SpRWL-vsgl (versioned SGL), SpRWL-snzi,
/// SpRWL-sharded (per-socket tracking), SpRWL-bravo (global reader bias),
/// SpRWL-timeout (deadline-aware reads over the bravo fast path),
/// SpRWL-mvcc (snapshot-isolation readers over a version-retaining engine,
/// judged by the SI spec), TLE, RW-LE, RWL (POSIX-style), BRLock,
/// PhaseFair, MCS-RW, PRWL.
std::vector<std::string> checked_locks();

/// The deliberately broken SpRWL variant (commit-time reader scan skips
/// tid 0): accepted by make_runner but NOT in checked_locks(). The checker
/// self-validation tests and `check_schedules --lock SpRWL-broken` use it
/// to prove the pipeline catches a real atomicity bug. The other
/// make_runner-only broken variants follow the same convention:
/// "SpRWL-sharded-broken", "SpRWL-bravo-broken", "SpRWL-timeout-broken"
/// (timeout unwind leaks its ReaderTable slot), and "SpRWL-mvcc-broken"
/// (snapshot lookup blinded: pinned readers observe too-new values).
inline const char* broken_lock_name() noexcept { return "SpRWL-broken"; }

/// Builds a runner executing `w` over a fresh instance of the named lock
/// per run. Throws std::invalid_argument for unknown names.
RunFn make_runner(const std::string& name, const Workload& w);

}  // namespace sprwl::check
