// Failing-schedule repro artifacts.
//
// When the explorer finds a violation it minimizes the schedule and writes
// `CHECK_repro_<seed>.json`: the lock name, the policy and seed that found
// it, the workload shape, the verdict, and the minimized fiber-id choice
// sequence. The file replays with one command:
//
//   build/bench/check_schedules --replay CHECK_repro_<seed>.json
//
// The format is a small fixed-shape JSON document written and parsed by
// hand (the repo carries no JSON dependency).
#pragma once

#include <string>
#include <vector>

#include "check/harness.h"

namespace sprwl::check {

struct ReproArtifact {
  std::string lock;    ///< registry name (registry.h)
  std::string policy;  ///< "dfs" or "pct"
  std::uint64_t seed = 0;
  Workload workload;
  std::string violation;  ///< verdict kind + detail
  std::vector<int> choices;  ///< minimized fiber-id schedule
};

/// Writes `dir`/CHECK_repro_<seed>.json (dir "" means the working
/// directory) and returns the path. Throws std::runtime_error on I/O
/// failure.
std::string write_artifact(const ReproArtifact& a, const std::string& dir);

/// Parses a file written by write_artifact. Returns false (leaving *out
/// unspecified) if the file is missing or malformed.
bool read_artifact(const std::string& path, ReproArtifact* out);

}  // namespace sprwl::check
