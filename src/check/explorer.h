// Schedule-space exploration drivers: bounded-exhaustive DFS and PCT over
// a RunFn, with trace minimization and repro-artifact emission on the
// first violation found.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "check/artifact.h"
#include "check/harness.h"

namespace sprwl::check {

struct ExploreOptions {
  /// DFS: safety cap on total runs (the bounded configs stay far below it).
  /// PCT: the number of randomized runs to execute.
  std::uint64_t max_runs = 200000;
  /// PCT base seed; recorded in artifacts and in the artifact file name.
  std::uint64_t seed = 1;
  int pct_depth = 3;
  /// PCT depth calibration: the first runs of explore_pct execute with the
  /// static decision-count heuristic, then the *measured* median trace
  /// length replaces it for the remaining runs — Burckhardt et al.'s
  /// probabilistic guarantee assumes change points land uniformly over the
  /// real decision count, which the heuristic can miss by the retry-loop
  /// factor of spin-heavy locks. 0 disables calibration.
  int calibration_runs = 5;
  bool sleep_sets = true;
  /// Replay runs the minimizer may spend shrinking a failing trace.
  int minimize_budget = 400;
  /// Where CHECK_repro_<seed>.json goes; empty disables artifact writing.
  std::string artifact_dir;
  std::string lock_name;  ///< recorded in artifacts
};

struct ExploreReport {
  std::uint64_t schedules = 0;  ///< complete runs judged
  std::uint64_t pruned = 0;     ///< sleep-set prunes (DFS only)
  bool exhausted = false;       ///< DFS: the whole bounded tree was covered
  /// PCT: decision count the post-calibration runs sampled change points
  /// over (the measured median plus the livelock-bound stall allowance;
  /// the static heuristic when calibration was off or cut short by an
  /// early violation).
  std::size_t calibrated_decisions = 0;
  bool found_violation = false;
  Verdict verdict;            ///< first violation (when found)
  std::vector<int> repro;     ///< minimized choice sequence for it
  std::string artifact_path;  ///< written CHECK_repro file, if any
};

/// Explores the schedule tree exhaustively (stops at the first violation).
ExploreReport explore_dfs(const RunFn& run, const Workload& w,
                          const ExploreOptions& opt);

/// Runs `opt.max_runs` PCT-scheduled runs (stops at the first violation).
ExploreReport explore_pct(const RunFn& run, const Workload& w,
                          const ExploreOptions& opt);

/// Replays a recorded choice sequence once and judges it.
Verdict replay_trace(const RunFn& run, const std::vector<int>& choices);

/// ddmin-style greedy shrink: removes chunks (halving the chunk size down
/// to single choices) while the replayed schedule keeps the same verdict
/// kind. Spends at most `budget` replay runs.
std::vector<int> minimize_trace(const RunFn& run, std::vector<int> choices,
                                Verdict::Kind kind, int budget);

}  // namespace sprwl::check
