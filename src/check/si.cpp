#include "check/si.h"

#include <algorithm>
#include <cstdint>
#include <vector>

namespace sprwl::check {

SiResult check_si_history(const History& h) {
  std::vector<const OpRecord*> writes;
  for (const OpRecord& op : h) {
    if (op.is_write) writes.push_back(&op);
  }
  std::sort(writes.begin(), writes.end(),
            [](const OpRecord* a, const OpRecord* b) {
              return a->value < b->value;
            });
  std::uint64_t prev_ver = 0;
  for (std::size_t i = 0; i < writes.size(); ++i) {
    if (writes[i]->value != i + 1) {
      return {false,
              "writer values are not 1.." + std::to_string(writes.size()) +
                  ": rank " + std::to_string(i + 1) + " stored " +
                  std::to_string(writes[i]->value) + " (lost update)"};
    }
    if (writes[i]->version <= prev_ver) {
      return {false,
              "commit versions disagree with write order: write " +
                  std::to_string(writes[i]->value) + " committed at version " +
                  std::to_string(writes[i]->version) +
                  " <= its predecessor's " + std::to_string(prev_ver)};
    }
    prev_ver = writes[i]->version;
  }
  for (const OpRecord& op : h) {
    if (op.is_write || !op.is_snapshot) continue;
    std::uint64_t expect = 0;
    for (const OpRecord* wr : writes) {
      if (wr->version <= op.version) ++expect;
    }
    if (op.value != expect) {
      return {false,
              "snapshot read by tid " + std::to_string(op.tid) +
                  " pinned at version " + std::to_string(op.version) +
                  " observed " + std::to_string(op.value) + ", expected " +
                  std::to_string(expect) +
                  (op.value > expect ? " (too-new read)" : " (too-old read)")};
    }
  }
  return {};
}

}  // namespace sprwl::check
