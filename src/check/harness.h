// Controlled-schedule run harness: one workload run under one policy.
//
// Each run is hermetic — a fresh HTM engine, a fresh lock instance, fresh
// shared cells and a fresh Simulator — so a schedule is a pure function of
// the policy's decisions. That is the property the DFS prefix replay, the
// trace minimizer and the repro artifacts all rest on.
//
// The workload is the library's standard invariant carrier (same shape as
// fault::run_chaos): writers increment a multi-cell counter under the
// write lock, readers snapshot it under the read lock and flag torn views.
// Every operation is recorded as an OpRecord for the linearizability
// checker; lost updates and torn reads also fall out of the history
// structurally (see linearizability.cpp).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "check/history.h"
#include "check/linearizability.h"
#include "fault/fault.h"
#include "htm/engine.h"
#include "htm/shared.h"
#include "locks/deadline.h"
#include "sim/schedule_policy.h"
#include "sim/simulator.h"

namespace sprwl::check {

struct Workload {
  int threads = 3;
  /// The last `writers` thread ids write; the rest read (the library's
  /// chaos-harness convention — tid 0 stays a reader, which keeps SpRWL's
  /// duration sampler on the reader EMA).
  int writers = 1;
  int ops_per_thread = 1;
  int cells = 4;
  /// Forwarded to sim::SimConfig (see there). no_progress_bound = 0 keeps
  /// the simulator's auto-derivation (64 + 16 * threads): queue-lock
  /// handoff chains grow with the thread count, so a flat constant starts
  /// misreading healthy MCS/phase-fair handoffs as livelock at 8+ threads.
  std::size_t max_decisions = 4000;
  int no_progress_bound = 0;
  /// Deadline-aware reads: readers acquire via try_read_for instead of
  /// read(), cycling through `read_deadlines` (budgets in cycles) by op
  /// index. A timed-out read records nothing in the history — the
  /// linearizability checker judges only sections that ran. Ignored for
  /// locks without timed variants.
  bool timed_reads = false;
  std::vector<std::uint64_t> read_deadlines;
  /// Snapshot-isolation readers: readers acquire via read_snapshot()
  /// (locks without one fall back to read()), the engine retains
  /// `retain_versions` prior versions per line, and every op records its
  /// version-clock stamp so evaluate() can judge snapshot reads against
  /// the SI spec (si.h) instead of Wing–Gong.
  bool snapshot_reads = false;
  std::uint32_t retain_versions = 0;
  /// Checker self-validation ONLY: forwards
  /// EngineConfig::broken_snapshot_too_new — snapshot reads return current
  /// memory even when the line is newer than the pin, the too-new read the
  /// SI checker must catch.
  bool broken_snapshot = false;
};

struct RunResult {
  bool completed = false;  ///< every fiber ran to the end of its body
  bool livelock = false;   ///< no-progress bound / decision cap verdict
  bool cancelled = false;  ///< run abandoned (policy prune or livelock)
  std::string error;       ///< first fiber exception, if any
  History history;
  std::vector<sim::PendingOp> trace;  ///< the decisions actually taken
  std::uint64_t final_value = 0;

  /// The fiber-id choice sequence, the replayable essence of the trace.
  std::vector<int> choices() const {
    std::vector<int> out;
    out.reserve(trace.size());
    for (const sim::PendingOp& op : trace) out.push_back(op.fiber);
    return out;
  }
};

struct Verdict {
  enum Kind {
    kOk = 0,
    kSkipped,          ///< run abandoned (e.g. DFS prune): nothing to judge
    kTorn,             ///< reader saw a half-applied write
    kLostUpdate,       ///< final memory / write values miss an increment
    kNonLinearizable,  ///< history admits no legal linearization
    kSiViolation,      ///< snapshot read broke the SI axioms (see si.h)
    kLivelock,         ///< no progress within the bound (incl. deadlock)
    kError,            ///< a fiber threw (lock bug or harness failure)
  };
  Kind kind = kOk;
  std::string detail;

  bool violation() const noexcept { return kind != kOk && kind != kSkipped; }
};

const char* to_string(Verdict::Kind k) noexcept;

/// A closed-over workload+lock combination the explorer can run repeatedly
/// under different policies (see registry.h for the named instances).
using RunFn = std::function<RunResult(sim::SchedulePolicy&)>;

/// Judges one run: structural invariants, then the Wing–Gong check.
Verdict evaluate(const RunResult& r);

/// Runs the workload once under `policy`. `make_lock` constructs a fresh
/// lock instance (returned by value; C++17 elision supports non-movable
/// locks) and is invoked once per run after the engine is installed.
template <class MakeLock>
RunResult run_controlled(const Workload& w, sim::SchedulePolicy& policy,
                         MakeLock&& make_lock) {
  struct alignas(64) Cell {
    htm::Shared<std::uint64_t> v;
  };

  htm::EngineConfig ec;
  ec.capacity = htm::kUnbounded;
  ec.max_threads = w.threads;
  // Small table: a fresh engine per explored schedule must not pay the
  // default 2^20-entry version table.
  ec.table_bits = 10;
  ec.retain_versions = w.retain_versions;
  ec.broken_snapshot_too_new = w.broken_snapshot;
  htm::Engine engine(ec);
  htm::EngineScope escope(engine);

  auto lock = make_lock();
  std::vector<Cell> cells(static_cast<std::size_t>(w.cells));

  RunResult res;
  res.history.reserve(
      static_cast<std::size_t>(w.threads) *
      static_cast<std::size_t>(w.ops_per_thread));
  std::uint64_t clock = 0;  // logical invoke/response stamps

  sim::SimConfig sc;
  sc.policy = &policy;
  sc.max_decisions = w.max_decisions;
  sc.no_progress_bound = w.no_progress_bound;
  sim::Simulator sim(sc);
  try {
    sim.run(w.threads, [&](int tid) {
      const bool is_writer = tid >= w.threads - w.writers;
      for (int i = 0; i < w.ops_per_thread; ++i) {
        if (is_writer) {
          std::uint64_t v = 0;
          const std::uint64_t invoke = ++clock;
          lock.write(1, [&] {
            v = cells[0].v.load() + 1;
            fault::checkpoint(fault::InjectPoint::kWriteBody, &lock);
            for (int c = 0; c < w.cells; ++c) {
              cells[static_cast<std::size_t>(c)].v.store(v);
            }
          });
          // Commit version of the section's last data publish (HTM: the
          // commit's write version; SGL fallback: the last store's) — the
          // SI spec orders writers by it. The section-pinned accessor, not
          // last_commit_version(): by the time write() returns, the lock
          // has already published its writer-flag clear through Shared<T>,
          // which draws a version of its own.
          res.history.push_back({tid, true, invoke, ++clock, v, false, false,
                                 w.snapshot_reads
                                     ? engine.last_section_version()
                                     : engine.last_commit_version()});
        } else {
          std::uint64_t v = 0;
          bool torn = false;
          std::uint64_t pin = htm::Engine::kNoSnapshot;
          const std::uint64_t invoke = ++clock;
          const auto body = [&] {
            // Per-attempt reset: an aborted HTM attempt must not leak its
            // observations into the committed one. The pin is kNoSnapshot
            // on non-snapshot runs AND on a snapshot section's registered
            // re-run after a SnapshotMiss — exactly the runs Wing–Gong
            // (not the SI spec) must judge.
            v = cells[0].v.load();
            torn = false;
            pin = engine.snapshot_version();
            fault::checkpoint(fault::InjectPoint::kReadBody, &lock);
            for (int c = 1; c < w.cells; ++c) {
              torn |= cells[static_cast<std::size_t>(c)].v.load() != v;
            }
          };
          bool acquired = true;
          bool timed = false;
          bool snap = false;
          if constexpr (requires {
                          lock.try_read_for(0, std::uint64_t{1}, [] {});
                        }) {
            if (w.timed_reads && !w.read_deadlines.empty()) {
              timed = true;
              const std::uint64_t budget =
                  w.read_deadlines[static_cast<std::size_t>(i) %
                                   w.read_deadlines.size()];
              acquired = lock.try_read_for(0, budget, body) ==
                         locks::AcquireResult::kAcquired;
            }
          }
          if constexpr (requires { lock.read_snapshot(0, [] {}); }) {
            if (!timed && w.snapshot_reads) {
              snap = true;
              lock.read_snapshot(0, body);
            }
          }
          if (!timed && !snap) lock.read(0, body);
          // A timed-out read ran no section: it contributes nothing the
          // linearizability checker could judge.
          if (acquired) {
            const bool pinned = pin != htm::Engine::kNoSnapshot;
            res.history.push_back({tid, false, invoke, ++clock, v, torn,
                                   pinned, pinned ? pin : 0});
          }
        }
      }
    });
    res.completed = !sim.cancelled();
  } catch (const std::exception& e) {
    res.error = e.what();
  }
  res.livelock = sim.livelocked();
  res.cancelled = sim.cancelled();
  res.trace = sim.decision_trace();
  res.final_value = cells[0].v.raw_load();
  return res;
}

}  // namespace sprwl::check
