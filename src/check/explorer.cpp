#include "check/explorer.h"

#include <utility>

#include "check/policies.h"

namespace sprwl::check {
namespace {

std::size_t expected_decisions(const Workload& w) {
  // Rough per-run decision count for PCT change-point sampling: each op
  // crosses a handful of sched points plus retries. Only the order of
  // magnitude matters.
  return static_cast<std::size_t>(w.threads) *
             static_cast<std::size_t>(w.ops_per_thread) * 32 +
         16;
}

void finalize_violation(const RunFn& run, const Workload& w,
                        const ExploreOptions& opt, const char* policy_name,
                        const RunResult& rr, const Verdict& v,
                        ExploreReport* rep) {
  rep->found_violation = true;
  rep->verdict = v;
  rep->repro =
      minimize_trace(run, rr.choices(), v.kind, opt.minimize_budget);
  if (!opt.artifact_dir.empty()) {
    ReproArtifact a;
    a.lock = opt.lock_name;
    a.policy = policy_name;
    a.seed = opt.seed;
    a.workload = w;
    a.violation = std::string(to_string(v.kind)) + ": " + v.detail;
    a.choices = rep->repro;
    rep->artifact_path = write_artifact(a, opt.artifact_dir);
  }
}

}  // namespace

Verdict replay_trace(const RunFn& run, const std::vector<int>& choices) {
  ReplayPolicy p(choices);
  return evaluate(run(p));
}

std::vector<int> minimize_trace(const RunFn& run, std::vector<int> cur,
                                Verdict::Kind kind, int budget) {
  std::size_t chunk = cur.size() / 2;
  if (chunk == 0) chunk = 1;
  while (budget > 0 && !cur.empty()) {
    std::size_t i = 0;
    while (i < cur.size() && budget > 0) {
      std::vector<int> cand;
      cand.reserve(cur.size() - 1);
      cand.insert(cand.end(), cur.begin(),
                  cur.begin() + static_cast<std::ptrdiff_t>(i));
      const std::size_t cut = std::min(i + chunk, cur.size());
      cand.insert(cand.end(),
                  cur.begin() + static_cast<std::ptrdiff_t>(cut), cur.end());
      --budget;
      if (replay_trace(run, cand).kind == kind) {
        cur = std::move(cand);  // keep position: the next chunk shifted in
      } else {
        i += chunk;
      }
    }
    if (chunk == 1) break;
    chunk /= 2;
  }
  return cur;
}

ExploreReport explore_dfs(const RunFn& run, const Workload& w,
                          const ExploreOptions& opt) {
  DfsPolicy policy(opt.sleep_sets);
  ExploreReport rep;
  for (std::uint64_t r = 0; r < opt.max_runs; ++r) {
    const RunResult rr = run(policy);
    if (policy.pruned()) {
      ++rep.pruned;
    } else {
      ++rep.schedules;
      const Verdict v = evaluate(rr);
      if (v.violation()) {
        finalize_violation(run, w, opt, "dfs", rr, v, &rep);
        return rep;
      }
    }
    if (!policy.advance()) {
      rep.exhausted = true;
      break;
    }
  }
  return rep;
}

ExploreReport explore_pct(const RunFn& run, const Workload& w,
                          const ExploreOptions& opt) {
  PctPolicy policy(opt.seed, opt.pct_depth, expected_decisions(w));
  ExploreReport rep;
  for (std::uint64_t r = 0; r < opt.max_runs; ++r) {
    const RunResult rr = run(policy);
    ++rep.schedules;
    const Verdict v = evaluate(rr);
    if (v.violation()) {
      finalize_violation(run, w, opt, "pct", rr, v, &rep);
      return rep;
    }
  }
  return rep;
}

}  // namespace sprwl::check
