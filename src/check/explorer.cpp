#include "check/explorer.h"

#include <algorithm>
#include <utility>

#include "check/policies.h"

namespace sprwl::check {
namespace {

std::size_t expected_decisions(const Workload& w) {
  // Rough per-run decision count for PCT change-point sampling: each op
  // crosses a handful of sched points plus retries. Only the order of
  // magnitude matters.
  return static_cast<std::size_t>(w.threads) *
             static_cast<std::size_t>(w.ops_per_thread) * 32 +
         16;
}

void finalize_violation(const RunFn& run, const Workload& w,
                        const ExploreOptions& opt, const char* policy_name,
                        const RunResult& rr, const Verdict& v,
                        ExploreReport* rep) {
  rep->found_violation = true;
  rep->verdict = v;
  rep->repro =
      minimize_trace(run, rr.choices(), v.kind, opt.minimize_budget);
  if (!opt.artifact_dir.empty()) {
    ReproArtifact a;
    a.lock = opt.lock_name;
    a.policy = policy_name;
    a.seed = opt.seed;
    a.workload = w;
    a.violation = std::string(to_string(v.kind)) + ": " + v.detail;
    a.choices = rep->repro;
    rep->artifact_path = write_artifact(a, opt.artifact_dir);
  }
}

}  // namespace

Verdict replay_trace(const RunFn& run, const std::vector<int>& choices) {
  ReplayPolicy p(choices);
  return evaluate(run(p));
}

std::vector<int> minimize_trace(const RunFn& run, std::vector<int> cur,
                                Verdict::Kind kind, int budget) {
  std::size_t chunk = cur.size() / 2;
  if (chunk == 0) chunk = 1;
  while (budget > 0 && !cur.empty()) {
    std::size_t i = 0;
    while (i < cur.size() && budget > 0) {
      std::vector<int> cand;
      cand.reserve(cur.size() - 1);
      cand.insert(cand.end(), cur.begin(),
                  cur.begin() + static_cast<std::ptrdiff_t>(i));
      const std::size_t cut = std::min(i + chunk, cur.size());
      cand.insert(cand.end(),
                  cur.begin() + static_cast<std::ptrdiff_t>(cut), cur.end());
      --budget;
      if (replay_trace(run, cand).kind == kind) {
        cur = std::move(cand);  // keep position: the next chunk shifted in
      } else {
        i += chunk;
      }
    }
    if (chunk == 1) break;
    chunk /= 2;
  }
  return cur;
}

ExploreReport explore_dfs(const RunFn& run, const Workload& w,
                          const ExploreOptions& opt) {
  DfsPolicy policy(opt.sleep_sets);
  ExploreReport rep;
  for (std::uint64_t r = 0; r < opt.max_runs; ++r) {
    const RunResult rr = run(policy);
    if (policy.pruned()) {
      ++rep.pruned;
    } else {
      ++rep.schedules;
      const Verdict v = evaluate(rr);
      if (v.violation()) {
        finalize_violation(run, w, opt, "dfs", rr, v, &rep);
        return rep;
      }
    }
    if (!policy.advance()) {
      rep.exhausted = true;
      break;
    }
  }
  return rep;
}

ExploreReport explore_pct(const RunFn& run, const Workload& w,
                          const ExploreOptions& opt) {
  ExploreReport rep;
  std::size_t expected = expected_decisions(w);
  rep.calibrated_decisions = expected;

  // Calibration phase: a few runs under the static heuristic, measuring how
  // many decisions this (lock, workload) really takes per run. The runs are
  // judged like any other — a violation here ends the exploration the same
  // way — and count toward max_runs.
  const std::uint64_t calib = std::min<std::uint64_t>(
      opt.calibration_runs > 0
          ? static_cast<std::uint64_t>(opt.calibration_runs)
          : 0,
      opt.max_runs);
  if (calib > 0) {
    std::vector<std::size_t> lengths;
    lengths.reserve(static_cast<std::size_t>(calib));
    PctPolicy policy(opt.seed, opt.pct_depth, expected);
    for (std::uint64_t r = 0; r < calib; ++r) {
      const RunResult rr = run(policy);
      ++rep.schedules;
      lengths.push_back(rr.trace.size());
      const Verdict v = evaluate(rr);
      if (v.violation()) {
        finalize_violation(run, w, opt, "pct", rr, v, &rep);
        return rep;
      }
    }
    // Median of the measured lengths: robust against the odd livelocked
    // run that burnt the whole decision budget. The stall allowance is
    // added on top: a run can extend past its useful work by up to
    // no_progress_bound verification-round decisions before the livelock
    // verdict, and change points must be able to land inside that window —
    // strict-priority starvation of a fair lock's spin-waiter is only
    // broken by a change point, so a horizon that stops at the median
    // would turn every late stall into a guaranteed false livelock.
    std::sort(lengths.begin(), lengths.end());
    const std::size_t median = lengths[lengths.size() / 2];
    if (median > 0) {
      sim::SimConfig sc;
      sc.no_progress_bound = w.no_progress_bound;
      expected = median +
                 static_cast<std::size_t>(sc.resolved_no_progress_bound(w.threads));
    }
    rep.calibrated_decisions = expected;
  }

  PctPolicy policy(opt.seed, opt.pct_depth, expected);
  for (std::uint64_t r = rep.schedules; r < opt.max_runs; ++r) {
    const RunResult rr = run(policy);
    ++rep.schedules;
    const Verdict v = evaluate(rr);
    if (v.violation()) {
      finalize_violation(run, w, opt, "pct", rr, v, &rep);
      return rep;
    }
  }
  return rep;
}

}  // namespace sprwl::check
