#include "check/registry.h"

#include <stdexcept>

#include "core/sprwl.h"
#include "dist/lock_service.h"
#include "locks/brlock.h"
#include "locks/mcs_rwlock.h"
#include "locks/passive_rwlock.h"
#include "locks/phase_fair.h"
#include "locks/posix_rwlock.h"
#include "locks/rwle.h"
#include "locks/tle.h"

namespace sprwl::check {
namespace {

core::Config sprwl_cfg(const Workload& w) {
  return core::Config::variant(core::SchedulingVariant::kFull, w.threads);
}

core::Config sharded_cfg(const Workload& w) {
  core::Config c = sprwl_cfg(w);
  // Split the checker threads over two simulated sockets so the sharded
  // scan really reads two summaries (one socket would degenerate to a
  // single-word scan, hiding cross-shard interleavings from the checker).
  c.socket_sharded_tracking = true;
  c.topology = sim::Topology::split(w.threads, 2);
  return c;
}

core::Config bravo_cfg(const Workload& w, std::size_t slots) {
  core::Config c = sprwl_cfg(w);
  c.bravo_bias = true;
  // A FRESH table per make_lock call (i.e. per explored schedule): runs
  // must not share reader-table state, or one schedule's leftover slot
  // would leak into the next. Tiny and single-line so the interesting
  // interleavings — slot collisions, revocation racing a fast-path
  // publish — are reachable within the checker's schedule budget.
  bravo::ReaderTable::Config tc;
  tc.max_threads = w.threads;
  tc.slots = slots;
  c.bravo_table = std::make_shared<bravo::ReaderTable>(tc);
  return c;
}

core::Config bravo_numa_cfg(const Workload& w, std::size_t per_shard_slots) {
  core::Config c = sprwl_cfg(w);
  c.bravo_bias = true;
  // Uninstrumented readers so the sharded-table protocol — per-socket slot
  // publish, summary bump, summary-gated revocation drain — is actually
  // driven on every schedule instead of being bypassed by HTM-first reads.
  c.reader_htm_first = false;
  // Fresh per-schedule table (see bravo_cfg), socket-sharded over a
  // 2-socket split of the checker threads: with 2 threads, tid 0 (the
  // workload's reader) homes on socket 0 and tid 1 (the writer) on socket
  // 1, so the drain's clean-shard summary skip of a REMOTE shard is on the
  // critical path of every revocation the checker explores.
  bravo::ReaderTable::Config tc;
  tc.max_threads = w.threads;
  tc.slots = per_shard_slots;
  tc.shard_by_socket = true;
  tc.topology = sim::Topology::split(w.threads, 2);
  c.bravo_table = std::make_shared<bravo::ReaderTable>(tc);
  return c;
}

template <class MakeLock>
RunFn bind(const Workload& w, MakeLock make_lock) {
  return [w, make_lock](sim::SchedulePolicy& policy) {
    return run_controlled(w, policy, make_lock);
  };
}

}  // namespace

std::vector<std::string> checked_locks() {
  return {"SpRWL",  "SpRWL-unins", "SpRWL-vsgl", "SpRWL-snzi",
          "SpRWL-sharded", "SpRWL-bravo", "SpRWL-bravo-numa",
          "SpRWL-timeout", "SpRWL-mvcc", "SpRWL-lease",
          "TLE",    "RW-LE",       "RWL",        "BRLock",
          "PhaseFair", "MCS-RW",   "PRWL"};
}

namespace {

// MVCC snapshot readers: the reader side goes through read_snapshot()
// against an engine retaining a small per-line ring, and evaluate() judges
// the history with the SI spec (si.h). Uninstrumented writers' scans never
// see these readers at all — the interesting interleavings are version
// pins racing commits, ring wrap, and the SGL-fallback pin guard, all of
// which the small ring (2 entries) keeps reachable in a 2-thread DFS.
Workload mvcc_workload(const Workload& w) {
  Workload sw = w;
  sw.snapshot_reads = true;
  if (sw.retain_versions == 0) sw.retain_versions = 2;
  return sw;
}

core::Config mvcc_cfg(const Workload& w) {
  core::Config c = sprwl_cfg(w);
  // Drive the snapshot path itself, not the HTM-first reader shortcut.
  c.reader_htm_first = false;
  c.snapshot_readers = true;
  return c;
}

// The distributed tier's lease + seqlock protocol (dist/lock_service.h).
// One node per checker thread, so every write is a full cross-node lease
// handoff (grant -> claim -> publish -> release) and readers are always
// remote optimists. The term is effectively infinite: controlled
// scheduling ignores clocks, so the virtual-time expiry fence is not
// sound here (DESIGN.md §15) — handoff is by explicit release, and the
// checker's target is the grant serialization and the seqlock protocol.
dist::LeasedLock::Config lease_cfg(const Workload& w) {
  dist::LeasedLock::Config c;
  c.topology = sim::Topology::split_nodes(w.threads, w.threads);
  c.max_threads = w.threads;
  c.lease.term = ~0ULL / 2;
  c.lease.backoff_base = 64;
  c.lease.backoff_max = 256;
  c.local = core::Config::variant(core::SchedulingVariant::kFull, w.threads);
  return c;
}

}  // namespace

RunFn make_runner(const std::string& name, const Workload& w) {
  if (name == "SpRWL") {
    return bind(w, [w] { return core::SpRWLock(sprwl_cfg(w)); });
  }
  if (name == "SpRWL-unins") {
    return bind(w, [w] {
      core::Config c = sprwl_cfg(w);
      c.reader_htm_first = false;
      return core::SpRWLock(c);
    });
  }
  if (name == "SpRWL-vsgl") {
    return bind(w, [w] {
      core::Config c = sprwl_cfg(w);
      c.versioned_sgl = true;
      return core::SpRWLock(c);
    });
  }
  if (name == "SpRWL-snzi") {
    return bind(w, [w] {
      core::Config c = sprwl_cfg(w);
      c.use_snzi = true;
      return core::SpRWLock(c);
    });
  }
  if (name == "SpRWL-sharded") {
    return bind(w, [w] { return core::SpRWLock(sharded_cfg(w)); });
  }
  if (name == "SpRWL-bravo") {
    // Global reader bias over an 8-slot (single-line) shared table; the
    // bias starts on, so the checker drives the full fast-path/revocation/
    // re-bias protocol, including slot-collision fallbacks.
    return bind(w, [w] { return core::SpRWLock(bravo_cfg(w, 8)); });
  }
  if (name == "SpRWL-bravo-broken") {
    // Revocation-drain self-validation: a ONE-slot table plus a drain that
    // skips the table's last slot means revocation drains nothing at all —
    // a fast-path reader parked in slot 0 survives it and a writer commits
    // over the reader's snapshot. Uninstrumented readers (no HTM-first) so
    // the fast path is actually taken. Accepted by make_runner only, never
    // listed as healthy.
    return bind(w, [w] {
      core::Config c = bravo_cfg(w, 1);
      c.reader_htm_first = false;
      c.broken_revoke_skip_last_slot = true;
      return core::SpRWLock(c);
    });
  }
  if (name == "SpRWL-bravo-numa") {
    // Socket-sharded reader table (4 slots per shard, each shard + summary
    // on its own line): the checker drives fast-path publishes against the
    // summary-gated drain, including the Dekker race between a reader's
    // summary bump and the writer's clean-shard skip.
    return bind(w, [w] { return core::SpRWLock(bravo_numa_cfg(w, 4)); });
  }
  if (name == "SpRWL-bravo-numa-broken") {
    // Sharded-drain self-validation: the revocation drain skips shard 0 —
    // summary and slots — so the socket-0 reader's fast-path registration
    // survives revocation and a writer commits over its snapshot (the
    // workload keeps tid 0 a reader; split(threads, 2) homes it on socket
    // 0). Accepted by make_runner only, never listed as healthy.
    return bind(w, [w] {
      core::Config c = bravo_numa_cfg(w, 1);
      c.broken_revoke_skip_shard = 0;
      return core::SpRWLock(c);
    });
  }
  if (name == "SpRWL-timeout") {
    // Deadline-aware readers over the bravo fast path. Uninstrumented
    // (no HTM-first) so the reader-table protocol is actually driven, and
    // every timed read is an extra schedule decision point: the budgets mix
    // an immediately expiring deadline (the cancellation unwind — occupy,
    // expire, release — runs on every schedule) with a comfortable one (the
    // acquired path runs too). DFS over this variant is the regression
    // net for phantom-reader bugs in the unwind.
    Workload tw = w;
    tw.timed_reads = true;
    tw.read_deadlines = {1, 400'000};
    return bind(tw, [tw] {
      core::Config c = bravo_cfg(tw, 8);
      c.reader_htm_first = false;
      return core::SpRWLock(c);
    });
  }
  if (name == "SpRWL-timeout-broken") {
    // Cancellation-unwind self-validation: the timed bias read's timeout
    // path skips the ReaderTable slot release, leaking the slot. The next
    // writer's revocation drain waits on the ghost forever — caught as a
    // livelock verdict. One slot + an immediately expiring budget make the
    // leak unconditional. Accepted by make_runner only, never listed as
    // healthy.
    Workload tw = w;
    tw.timed_reads = true;
    tw.read_deadlines = {1};
    return bind(tw, [tw] {
      core::Config c = bravo_cfg(tw, 1);
      c.reader_htm_first = false;
      c.broken_timeout_skip_slot_release = true;
      return core::SpRWLock(c);
    });
  }
  if (name == "SpRWL-mvcc") {
    const Workload sw = mvcc_workload(w);
    return bind(sw, [sw] { return core::SpRWLock(mvcc_cfg(sw)); });
  }
  if (name == "SpRWL-mvcc-broken") {
    // SI-checker self-validation: the engine's snapshot lookup is blinded
    // (broken_snapshot_too_new) — a pinned reader racing a commit observes
    // the post-commit value, a too-new read that violates
    // read-your-snapshot. Accepted by make_runner only, never listed as
    // healthy.
    Workload sw = mvcc_workload(w);
    sw.broken_snapshot = true;
    // One cell: a blinded reader that straddles a multi-cell commit also
    // produces a torn view, which evaluate() would classify ahead of the
    // SI check. A single word leaves exactly one reachable anomaly — the
    // too-new read — so the run validates the SI checker specifically.
    sw.cells = 1;
    return bind(sw, [sw] { return core::SpRWLock(mvcc_cfg(sw)); });
  }
  if (name == "SpRWL-lease") {
    return bind(w, [w] { return dist::LeasedLock(lease_cfg(w)); });
  }
  if (name == "SpRWL-lease-broken") {
    // Stale-lease-read self-validation: the optimistic reader skips the
    // version re-validation after its copy, so a read straddling a claim/
    // publish window is accepted — the torn/stale observation the lease
    // tier's whole read protocol exists to reject. Accepted by make_runner
    // only, never listed as healthy.
    return bind(w, [w] {
      dist::LeasedLock::Config c = lease_cfg(w);
      c.broken_skip_read_validation = true;
      return dist::LeasedLock(c);
    });
  }
  if (name == "SpRWL-sharded-broken") {
    // The broken-scan self-validation under the hierarchical layout: the
    // writer's commit scan skips the socket summary owning reader tid 0,
    // so it can commit over that whole socket's live readers. Accepted by
    // make_runner only (like SpRWL-broken); never listed as healthy.
    return bind(w, [w] {
      core::Config c = sharded_cfg(w);
      c.reader_htm_first = false;
      c.broken_scan_skip_tid = 0;
      return core::SpRWLock(c);
    });
  }
  if (name == broken_lock_name()) {
    // Uninstrumented readers + a commit scan that skips reader tid 0: a
    // writer can commit all cells while that reader is mid-snapshot. The
    // workload keeps tid 0 a reader for any writers < threads.
    return bind(w, [w] {
      core::Config c = sprwl_cfg(w);
      c.reader_htm_first = false;
      c.broken_scan_skip_tid = 0;
      return core::SpRWLock(c);
    });
  }
  if (name == "TLE") {
    return bind(w, [w] {
      locks::TLELock::Config c;
      c.max_threads = w.threads;
      return locks::TLELock(c);
    });
  }
  if (name == "RW-LE") {
    return bind(w, [w] {
      locks::RWLELock::Config c;
      c.max_threads = w.threads;
      return locks::RWLELock(c);
    });
  }
  if (name == "RWL") {
    return bind(w, [w] { return locks::PosixRWLock(w.threads); });
  }
  if (name == "BRLock") {
    return bind(w, [w] { return locks::BRLock(w.threads); });
  }
  if (name == "PhaseFair") {
    return bind(w, [w] { return locks::PhaseFairRWLock(w.threads); });
  }
  if (name == "MCS-RW") {
    return bind(w, [w] { return locks::McsRWLock(w.threads); });
  }
  if (name == "PRWL") {
    return bind(w, [w] { return locks::PassiveRWLock(w.threads); });
  }
  throw std::invalid_argument("unknown checker lock: " + name);
}

}  // namespace sprwl::check
