#include "check/harness.h"

namespace sprwl::check {

const char* to_string(Verdict::Kind k) noexcept {
  switch (k) {
    case Verdict::kOk: return "ok";
    case Verdict::kSkipped: return "skipped";
    case Verdict::kTorn: return "torn-read";
    case Verdict::kLostUpdate: return "lost-update";
    case Verdict::kNonLinearizable: return "non-linearizable";
    case Verdict::kLivelock: return "livelock";
    case Verdict::kError: return "error";
  }
  return "?";
}

Verdict evaluate(const RunResult& r) {
  // Livelock implies cancellation, so it must be classified first.
  if (r.livelock) {
    return {Verdict::kLivelock,
            "no schedulable progress within the bound (deadlock or livelock)"};
  }
  if (r.cancelled) return {Verdict::kSkipped, "run abandoned by the policy"};
  if (!r.error.empty()) return {Verdict::kError, r.error};

  for (const OpRecord& op : r.history) {
    if (op.torn) {
      return {Verdict::kTorn,
              "reader tid " + std::to_string(op.tid) +
                  " observed disagreeing cells (value " +
                  std::to_string(op.value) + ")"};
    }
  }
  std::uint64_t writes = 0;
  for (const OpRecord& op : r.history) {
    if (op.is_write) ++writes;
  }
  if (r.final_value != writes) {
    return {Verdict::kLostUpdate,
            "final counter " + std::to_string(r.final_value) + " after " +
                std::to_string(writes) + " writes"};
  }
  const LinResult lr = check_counter_history(r.history);
  if (!lr.ok) {
    const Verdict::Kind k = lr.reason.find("lost update") != std::string::npos
                                ? Verdict::kLostUpdate
                                : Verdict::kNonLinearizable;
    return {k, lr.reason};
  }
  return {};
}

}  // namespace sprwl::check
