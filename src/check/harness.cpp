#include "check/harness.h"

#include "check/si.h"

namespace sprwl::check {

const char* to_string(Verdict::Kind k) noexcept {
  switch (k) {
    case Verdict::kOk: return "ok";
    case Verdict::kSkipped: return "skipped";
    case Verdict::kTorn: return "torn-read";
    case Verdict::kLostUpdate: return "lost-update";
    case Verdict::kNonLinearizable: return "non-linearizable";
    case Verdict::kSiViolation: return "si-violation";
    case Verdict::kLivelock: return "livelock";
    case Verdict::kError: return "error";
  }
  return "?";
}

Verdict evaluate(const RunResult& r) {
  // Livelock implies cancellation, so it must be classified first.
  if (r.livelock) {
    return {Verdict::kLivelock,
            "no schedulable progress within the bound (deadlock or livelock)"};
  }
  if (r.cancelled) return {Verdict::kSkipped, "run abandoned by the policy"};
  if (!r.error.empty()) return {Verdict::kError, r.error};

  for (const OpRecord& op : r.history) {
    if (op.torn) {
      return {Verdict::kTorn,
              "reader tid " + std::to_string(op.tid) +
                  " observed disagreeing cells (value " +
                  std::to_string(op.value) + ")"};
    }
  }
  std::uint64_t writes = 0;
  for (const OpRecord& op : r.history) {
    if (op.is_write) ++writes;
  }
  if (r.final_value != writes) {
    return {Verdict::kLostUpdate,
            "final counter " + std::to_string(r.final_value) + " after " +
                std::to_string(writes) + " writes"};
  }
  bool has_snapshot = false;
  for (const OpRecord& op : r.history) has_snapshot |= op.is_snapshot;
  if (has_snapshot) {
    // Snapshot reads are judged by the SI spec; a legal snapshot history
    // is NOT linearizable against real-time order (a pinned reader keeps
    // returning the old count after later writes respond), so Wing–Gong
    // runs only over the non-snapshot sub-history.
    const SiResult sr = check_si_history(r.history);
    if (!sr.ok) {
      const Verdict::Kind k =
          sr.reason.find("lost update") != std::string::npos
              ? Verdict::kLostUpdate
              : Verdict::kSiViolation;
      return {k, sr.reason};
    }
    History lin;
    for (const OpRecord& op : r.history) {
      if (!op.is_snapshot) lin.push_back(op);
    }
    const LinResult lsub = check_counter_history(lin);
    if (!lsub.ok) {
      const Verdict::Kind k =
          lsub.reason.find("lost update") != std::string::npos
              ? Verdict::kLostUpdate
              : Verdict::kNonLinearizable;
      return {k, lsub.reason};
    }
    return {};
  }
  const LinResult lr = check_counter_history(r.history);
  if (!lr.ok) {
    const Verdict::Kind k = lr.reason.find("lost update") != std::string::npos
                                ? Verdict::kLostUpdate
                                : Verdict::kNonLinearizable;
    return {k, lr.reason};
  }
  return {};
}

}  // namespace sprwl::check
