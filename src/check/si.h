// Snapshot-isolation spec checker for the counter workload, judged from
// the recorded version-clock stamps (history.h) rather than real-time
// order. Snapshot reads are deliberately stale — a long reader pinned at
// version S keeps observing the state as of S while writers commit past
// it — so Wing–Gong linearizability (linearizability.h) would reject every
// healthy snapshot history. The SI axioms that replace it:
//
//  * writer serialization / no lost update: the recorded write values are
//    exactly 1..N (every increment applied once), and ordering writers by
//    commit version agrees with ordering them by value — the i-th
//    committed write is the one that stored i;
//  * read-your-snapshot: a snapshot read pinned at S observes exactly the
//    writes with commit version <= S, i.e. its value equals
//    |{w : w.version <= S}|. A too-new value is the bug the
//    broken_snapshot variant plants (version lookup skipped); a too-old
//    value means a write with wv <= S was invisible at the pin.
//
// Non-snapshot operations (writers and registered reads, including a
// snapshot section's fallback re-run after a SnapshotMiss) remain subject
// to the Wing–Gong check; evaluate() (harness.cpp) runs both.
#pragma once

#include <string>

#include "check/history.h"

namespace sprwl::check {

struct SiResult {
  bool ok = true;
  std::string reason;
};

/// Judges `h` against the SI axioms above. Only snapshot reads and writes
/// are consulted; plain reads pass through unjudged.
SiResult check_si_history(const History& h);

}  // namespace sprwl::check
