// Sharded distributed lock service: SpRWL locally per node, versioned
// leases for cross-node ownership, optimistic one-sided cross-node reads.
//
// A Shard is one lease-protected payload (a small array of cache lines)
// living in "global memory" — in an RDMA deployment, the home node's
// registered region. Three access paths:
//
//  * WRITE — the writer's node must hold the shard's lease (lease.h). The
//    payload publication is a seqlock: claim (version -> odd), undo log,
//    cell stores, publish (version -> even), all *plain* strong-isolation
//    stores executed under the node's local SpRWL in SGL mode. Plain
//    stores publish per word in virtual-time order, which is what makes
//    the odd/even protocol meaningful to non-coherent remote readers — an
//    HTM commit's multi-line publish window has no order a remote reader
//    could rely on (and real NICs read remote memory with no more than
//    word atomicity), so the write body explicitly aborts out of any
//    transaction and always runs on the SGL path. The local SpRWL is the
//    node's local concurrency control: it serializes the node's writers
//    and lets escalated local readers read coherently.
//  * OPTIMISTIC READ — any thread, any node: read version, copy the
//    payload (each line priced as a one-sided remote read when it crosses
//    nodes, CostModel::remote_node), re-read version; mismatch or an odd
//    version rejects the copy and retries. After `read_retries` failures
//    the reader escalates to the lease: its node acquires ownership and
//    reads under the local SpRWL.
//  * DEGRADED — when the lease service is unreachable
//    (set_service_reachable(false)), writers fall back to the shard's
//    degradation SGL: a single global lock, safe and slow, preserving the
//    version protocol so optimistic readers keep working.
//
// Crash recovery: a crashed holder leaves the lease to expire and possibly
// a torn payload (version odd — the claim landed but the publish did
// not). The next node to be *granted* the lease (a fresh epoch) runs
// recovery before using it: if the undo stamp matches the torn version,
// the cells are rolled back from the undo log; the version is then
// published even. The undo stamp is written after the undo log is
// complete, so a crash mid-undo leaves a stale stamp and recovery knows
// the cells were never touched. Recovery is idempotent (re-crashing
// mid-recovery re-runs it against the same undo image). The stale
// holder's late stores are fenced by the per-store expiry guard — see
// lease.h and DESIGN.md §15 for the full safety argument.
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/platform.h"
#include "core/sprwl.h"
#include "dist/lease.h"
#include "fault/fault.h"
#include "htm/shared.h"
#include "locks/deadline.h"
#include "locks/sgl.h"

namespace sprwl::dist {

/// Explicit abort code for "this body must not run transactionally": the
/// seqlock publication depends on plain per-word store order, so the dist
/// write body aborts any enclosing transaction and runs on the local
/// lock's SGL path (cfg.local.max_retries is forced to 0, so the abort
/// escalates immediately).
inline constexpr std::uint8_t kCodePlainOnly = 0x07;

struct ShardConfig {
  /// Node mapping for thread ids. nodes == 1 degenerates to a single
  /// coherence domain (every path still works; nothing crosses the fabric).
  sim::Topology topology;
  int max_threads = 64;
  /// Payload size in cache lines (one 64-bit word per line — line
  /// granularity is what torn cross-node copies split on).
  std::size_t cells = 4;
  LeaseConfig lease;
  /// Template for the per-node local SpRWLs (max_threads and max_retries
  /// are overridden; see kCodePlainOnly).
  core::Config local;
  /// Optimistic read attempts before escalating to the lease.
  int read_retries = 4;
  /// Escalated (lease-held) read rounds before read() reports failure.
  int escalation_rounds = 64;
  /// Write attempts (each a lease ensure + local section) before write()
  /// reports failure. 0 = unbounded.
  int write_budget = 16;
  /// Checker/oracle self-validation ONLY: the optimistic read skips the
  /// version re-validation — a stale-lease/torn read the checker and the
  /// torn-read oracle must catch. Never set in production.
  bool broken_skip_read_validation = false;
};

struct ShardStats {
  std::atomic<std::uint64_t> reads{0};
  std::atomic<std::uint64_t> read_retries{0};      ///< rejected optimistic copies
  std::atomic<std::uint64_t> read_escalations{0};
  std::atomic<std::uint64_t> read_failures{0};
  std::atomic<std::uint64_t> writes{0};
  std::atomic<std::uint64_t> write_abandons{0};    ///< fenced mid-write (lease lost)
  std::atomic<std::uint64_t> write_failures{0};
  std::atomic<std::uint64_t> recoveries{0};        ///< torn payloads repaired
  std::atomic<std::uint64_t> degraded_writes{0};
};

class Shard {
 public:
  explicit Shard(const ShardConfig& cfg)
      : cfg_(cfg),
        lease_(cfg.lease),
        cells_(cfg.cells),
        undo_(cfg.cells),
        cur_(static_cast<std::size_t>(cfg.max_threads)),
        nxt_(static_cast<std::size_t>(cfg.max_threads)) {
    assert(cfg.cells >= 1);
    core::Config lc = cfg.local;
    lc.max_threads = cfg.max_threads;
    lc.max_retries = 0;  // every write body runs on the SGL path (plain stores)
    const int nodes = cfg.topology.nodes < 1 ? 1 : cfg.topology.nodes;
    local_.reserve(static_cast<std::size_t>(nodes));
    for (int n = 0; n < nodes; ++n) {
      local_.push_back(std::make_unique<core::SpRWLock>(lc));
    }
    for (auto& b : cur_) b.assign(cfg.cells, 0);
    for (auto& b : nxt_) b.assign(cfg.cells, 0);
  }

  Shard(const Shard&) = delete;
  Shard& operator=(const Shard&) = delete;

  /// Read-modify-write of the whole payload. `f(vals, n)` receives the
  /// current payload and rewrites it in place; like every section body in
  /// this library it must be re-runnable (a fenced attempt re-ensures the
  /// lease and runs it again). Returns false when the write budget or the
  /// lease acquire budget was exhausted.
  template <class F>
  bool write(int tid, F&& f) {
    const int node = cfg_.topology.node_of(tid);
    for (int attempt = 0;
         cfg_.write_budget == 0 || attempt < cfg_.write_budget; ++attempt) {
      if (!service_reachable_.raw_load()) {
        return write_degraded(tid, std::forward<F>(f));
      }
      Lease l = ensure_lease(node, locks::kNoDeadline);
      if (!l.valid()) break;
      maybe_renew(l);
      bool ok = false;
      local_[static_cast<std::size_t>(node)]->write(
          0, [&] { ok = write_body(tid, l, f); });
      if (ok) {
        stats_.writes.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
      stats_.write_abandons.fetch_add(1, std::memory_order_relaxed);
    }
    stats_.write_failures.fetch_add(1, std::memory_order_relaxed);
    return false;
  }

  /// Optimistic one-sided read of the whole payload into out[0..cells).
  /// Validated copies only; escalates to the lease after repeated
  /// rejections. Returns false only when both paths exhausted their
  /// budgets (a shard under permanent write pressure from a dead service).
  bool read(int tid, std::uint64_t* out) {
    for (int a = 0; a < cfg_.read_retries; ++a) {
      if (read_attempt(out, 0)) {
        stats_.reads.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
      stats_.read_retries.fetch_add(1, std::memory_order_relaxed);
      platform::pause();
    }
    stats_.read_escalations.fetch_add(1, std::memory_order_relaxed);
    const int node = cfg_.topology.node_of(tid);
    for (int round = 0; round < cfg_.escalation_rounds; ++round) {
      if (!service_reachable_.raw_load()) {
        // No lease authority: keep validating optimistically against the
        // degraded writers (they preserve the version protocol).
        if (read_attempt(out, 0)) {
          stats_.reads.fetch_add(1, std::memory_order_relaxed);
          return true;
        }
        platform::pause();
        continue;
      }
      Lease l = ensure_lease(node, locks::kNoDeadline);
      if (!l.valid()) break;
      bool ok = false;
      local_[static_cast<std::size_t>(node)]->read(
          0, [&] { ok = read_attempt(out, 0); });
      if (ok) {
        stats_.reads.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
      platform::pause();
    }
    stats_.read_failures.fetch_add(1, std::memory_order_relaxed);
    return false;
  }

  /// One raw optimistic attempt with a deliberate virtual-time stall
  /// between the two halves of the payload copy — the torn-read oracle
  /// (fault/chaos.h) drives this to *manufacture* split copies and assert
  /// the validation loop rejects every torn observation. Returns whether
  /// the copy was accepted.
  bool read_once_split(std::uint64_t* out, std::uint64_t mid_copy_stall) {
    return read_attempt(out, mid_copy_stall);
  }

  /// Service reachability toggle (degradation column of the bench): while
  /// false, writers bypass the lease and serialize on the degradation SGL.
  void set_service_reachable(bool up) { service_reachable_.raw_store(up); }

  LeaseService& lease() noexcept { return lease_; }
  const ShardStats& stats() const noexcept { return stats_; }
  const ShardConfig& config() const noexcept { return cfg_; }

  /// Raw payload word (test/bench assertions outside any run).
  std::uint64_t raw_cell(std::size_t i) const { return cells_[i].v.raw_load(); }
  std::uint64_t raw_version() const { return version_.raw_load(); }

 private:
  struct alignas(64) Line {
    htm::Shared<std::uint64_t> v;
  };

  /// Guarded store: the holder's write access dies exactly at its cached
  /// expiry (lease.h explains why the cached value is sound). Every store
  /// of the write/recovery paths goes through this — a false return
  /// abandons the attempt, leaving the torn state for the next holder's
  /// recovery.
  static bool guarded_store(const Lease& l, htm::Shared<std::uint64_t>& w,
                            std::uint64_t v) {
    if (platform::now() >= l.expiry) return false;
    w.store(v);
    return true;
  }

  /// Acquire-or-join the node's lease; a fresh grant runs recovery before
  /// anyone on the node may use the epoch, a join waits for the granting
  /// thread's recovery to finish.
  Lease ensure_lease(int node, std::uint64_t deadline) {
    for (;;) {
      bool fresh = false;
      Lease l = lease_.acquire(node, deadline, &fresh);
      if (!l.valid()) return l;
      if (fresh) {
        if (!recover(l)) continue;  // expired mid-recovery: re-acquire
        ready_epoch_.store(l.epoch);
        return l;
      }
      if (wait_ready(l)) return l;
      // Lease died while waiting for recovery; try again.
    }
  }

  bool wait_ready(const Lease& l) {
    while (ready_epoch_.load() != l.epoch) {
      if (!lease_.validate(l)) return false;
      platform::pause();
    }
    return true;
  }

  /// Repair a torn payload under a freshly granted lease. See the header
  /// comment for the undo-stamp protocol; idempotent, expiry-guarded.
  bool recover(const Lease& l) {
    const std::uint64_t v = version_.load();
    if ((v & 1) == 0) return true;
    stats_.recoveries.fetch_add(1, std::memory_order_relaxed);
    fault::checkpoint(fault::InjectPoint::kLeaseExpire, this);
    if (undo_stamp_.load() == v) {
      for (std::size_t i = 0; i < cfg_.cells; ++i) {
        if (!guarded_store(l, cells_[i].v, undo_[i].v.load())) return false;
      }
    }
    return guarded_store(l, version_, v + 1);  // odd + 1: stable again
  }

  /// Renew when the remaining term dropped under a quarter — the margin
  /// keeps steady writers from ever racing their own expiry. A failed
  /// renewal is not an error here; the write body's guards handle it.
  void maybe_renew(Lease& l) {
    const std::uint64_t now = platform::now();
    if (l.expiry > now && l.expiry - now >= lease_.config().term / 4) return;
    (void)lease_.renew(l);
  }

  template <class F>
  bool write_body(int tid, const Lease& l, F& f) {
    if (htm::Engine* e = htm::Engine::current(); e != nullptr && e->in_tx()) {
      e->abort_tx(kCodePlainOnly);  // seqlock publication needs plain stores
    }
    const std::uint64_t v = version_.load();
    if ((v & 1) != 0) return false;  // unrecovered tear: not ours to repair
    std::vector<std::uint64_t>& cur = cur_[static_cast<std::size_t>(tid)];
    std::vector<std::uint64_t>& nxt = nxt_[static_cast<std::size_t>(tid)];
    for (std::size_t i = 0; i < cfg_.cells; ++i) cur[i] = cells_[i].v.load();
    nxt = cur;
    f(nxt.data(), cfg_.cells);
    // Claim: remote readers now reject their copies.
    if (!guarded_store(l, version_, v + 1)) return false;
    fault::checkpoint(fault::InjectPoint::kWriteBody, this);
    // Undo log, completed before the stamp declares it valid — a crash
    // in between leaves a stale stamp and recovery knows the cells are
    // still clean (the torn-write window, tests/dist/test_lock_service).
    for (std::size_t i = 0; i < cfg_.cells; ++i) {
      if (!guarded_store(l, undo_[i].v, cur[i])) return false;
    }
    if (!guarded_store(l, undo_stamp_, v + 1)) return false;
    fault::checkpoint(fault::InjectPoint::kWriteBody, this);
    for (std::size_t i = 0; i < cfg_.cells; ++i) {
      if (!guarded_store(l, cells_[i].v, nxt[i])) return false;
      if (i + 1 == cfg_.cells / 2) {
        fault::checkpoint(fault::InjectPoint::kWriteBody, this);
      }
    }
    // Publish: authoritative lease re-validation, then the even version.
    if (!lease_.validate(l)) return false;
    return guarded_store(l, version_, v + 2);
  }

  template <class F>
  bool write_degraded(int tid, F&& f) {
    fallback_sgl_.lock();
    std::uint64_t v = version_.load();
    if ((v & 1) != 0) {
      // Tear left behind by a holder that died before the degradation:
      // repair it under the global SGL (no lease authority exists to
      // contest it; the operator degraded the whole service).
      stats_.recoveries.fetch_add(1, std::memory_order_relaxed);
      if (undo_stamp_.load() == v) {
        for (std::size_t i = 0; i < cfg_.cells; ++i) {
          cells_[i].v.store(undo_[i].v.load());
        }
      }
      version_.store(v + 1);
      v += 1;
    }
    std::vector<std::uint64_t>& cur = cur_[static_cast<std::size_t>(tid)];
    std::vector<std::uint64_t>& nxt = nxt_[static_cast<std::size_t>(tid)];
    for (std::size_t i = 0; i < cfg_.cells; ++i) cur[i] = cells_[i].v.load();
    nxt = cur;
    f(nxt.data(), cfg_.cells);
    version_.store(v + 1);
    for (std::size_t i = 0; i < cfg_.cells; ++i) cells_[i].v.store(nxt[i]);
    version_.store(v + 2);
    fallback_sgl_.unlock();
    stats_.degraded_writes.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  /// The optimistic protocol itself: version, copy, version. The copy
  /// emits a checkpoint at its midpoint — under chaos/DFS that is where
  /// preemptions and node crashes split it — and `mid_copy_stall` lets the
  /// torn-read oracle split it deterministically.
  bool read_attempt(std::uint64_t* out, std::uint64_t mid_copy_stall) {
    fault::checkpoint(fault::InjectPoint::kReadBody, this);
    const std::uint64_t v0 = version_.load();
    if ((v0 & 1) != 0) return false;  // mid-publish
    for (std::size_t i = 0; i < cfg_.cells; ++i) {
      out[i] = cells_[i].v.load();
      if (i + 1 == cfg_.cells / 2) {
        if (mid_copy_stall != 0) platform::advance(mid_copy_stall);
        fault::checkpoint(fault::InjectPoint::kReadBody, this);
      }
    }
    if (cfg_.broken_skip_read_validation) return true;
    return version_.load() == v0;
  }

  ShardConfig cfg_;
  LeaseService lease_;
  std::vector<std::unique_ptr<core::SpRWLock>> local_;  // one per node
  // Line-anchored for the same reason as Line: the version word's cache
  // line (addr >> 6) must not depend on the Shard's allocation address.
  alignas(64) htm::Shared<std::uint64_t> version_;  // even=stable, odd=publishing
  htm::Shared<std::uint64_t> undo_stamp_;  // claim version the undo is for
  htm::Shared<std::uint64_t> ready_epoch_; // recovery-done gate per epoch
  htm::Shared<bool> service_reachable_{true};
  std::vector<Line> cells_;
  std::vector<Line> undo_;
  std::vector<std::vector<std::uint64_t>> cur_, nxt_;  // per-tid scratch
  locks::SglLock fallback_sgl_;            // degradation path
  ShardStats stats_;
};

/// The sharded service: `shards` independent Shards (independent leases,
/// independent payloads) over one topology — the unit the benchmark sweeps.
class LockService {
 public:
  LockService(const ShardConfig& cfg, std::size_t shards) {
    shards_.reserve(shards);
    for (std::size_t s = 0; s < shards; ++s) {
      shards_.push_back(std::make_unique<Shard>(cfg));
    }
  }

  Shard& shard(std::size_t i) { return *shards_[i % shards_.size()]; }
  std::size_t shard_count() const noexcept { return shards_.size(); }

  void set_service_reachable(bool up) {
    for (auto& s : shards_) s->set_service_reachable(up);
  }

 private:
  std::vector<std::unique_ptr<Shard>> shards_;
};

/// Closure-based adapter with the library's standard lock interface
/// (read(cs, f) / write(cs, f)) so the systematic checker can drive the
/// lease + seqlock protocol with its counter workload (check/registry.cpp,
/// "SpRWL-lease"). The reader wraps f in the optimistic validation loop —
/// like an HTM-first reader, f must be re-runnable — and the writer runs f
/// between claim and publish under the node's lease and local SpRWL.
/// broken_skip_read_validation reproduces the stale-lease read the checker
/// must catch ("SpRWL-lease-broken").
class LeasedLock {
 public:
  struct Config {
    sim::Topology topology;
    int max_threads = 8;
    LeaseConfig lease;
    core::Config local;
    bool broken_skip_read_validation = false;
  };

  explicit LeasedLock(const Config& cfg) : cfg_(cfg), lease_(cfg.lease) {
    core::Config lc = cfg.local;
    lc.max_threads = cfg.max_threads;
    lc.max_retries = 0;
    const int nodes = cfg.topology.nodes < 1 ? 1 : cfg.topology.nodes;
    local_.reserve(static_cast<std::size_t>(nodes));
    for (int n = 0; n < nodes; ++n) {
      local_.push_back(std::make_unique<core::SpRWLock>(lc));
    }
  }

  LeasedLock(const LeasedLock&) = delete;
  LeasedLock& operator=(const LeasedLock&) = delete;

  template <class F>
  void write(int cs_id, F&& f) {
    const int node = cfg_.topology.node_of(platform::thread_id());
    for (;;) {
      Lease l = lease_.acquire(node);
      bool ok = false;
      local_[static_cast<std::size_t>(node)]->write(cs_id, [&] {
        if (htm::Engine* e = htm::Engine::current();
            e != nullptr && e->in_tx()) {
          e->abort_tx(kCodePlainOnly);
        }
        const std::uint64_t v = version_.load();
        if ((v & 1) != 0) return;  // foreign claim (never ours: lease held)
        version_.store(v + 1);
        fault::checkpoint(fault::InjectPoint::kWriteBody, &version_);
        f();
        fault::checkpoint(fault::InjectPoint::kWriteBody, &version_);
        version_.store(v + 2);
        ok = true;
      });
      lease_.release(l);
      if (ok) return;
    }
  }

  template <class F>
  void read(int cs_id, F&& f) {
    (void)cs_id;
    for (;;) {
      const std::uint64_t v0 = version_.load();
      if ((v0 & 1) != 0) {
        platform::pause();
        continue;
      }
      f();
      if (cfg_.broken_skip_read_validation) return;
      if (version_.load() == v0) return;
      platform::pause();
    }
  }

 private:
  Config cfg_;
  LeaseService lease_;
  std::vector<std::unique_ptr<core::SpRWLock>> local_;
  alignas(64) htm::Shared<std::uint64_t> version_;
};

}  // namespace sprwl::dist
