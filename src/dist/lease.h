// Versioned leases: cross-node write ownership for the distributed tier.
//
// Nodes in a multi-node sim::Topology share no cache coherence (see
// topology.h), so cross-node ownership cannot ride on the engine's strong
// isolation the way the single-node locks do. The dist tier instead uses
// the classic lease protocol (Gray & Cheriton): a node acquires a
// *versioned lease* — a (epoch, holder, expiry) triple — whose validity is
// bounded in virtual time. Every grant bumps the epoch, which is the fence
// the safety argument rests on (DESIGN.md §15): a recovered lease can never
// admit a stale holder's late write, because
//
//  * the holder guards every payload store with a now() < expiry check
//    against its *cached* grant expiry (an RDMA deployment would revoke
//    the NIC's write access at expiry; the virtual-time guard models that
//    revocation exactly, and under the simulator's min-time scheduling all
//    guarded stores therefore execute before any post-expiry grant), and
//  * the service re-grants only at now() >= expiry, with a fresh epoch, so
//    renewal after expiry is *rejected* — a partitioned holder whose renew
//    message arrives late learns it lost the lease instead of extending a
//    lease someone else now holds.
//
// The service itself is a tiny state machine serialized by an internal SGL
// (a real lock server serializes its own grant log); readers validate
// leases lock-free through a seqlock so validation costs four loads on the
// fast path. All state lives in Shared<> words, so when the service's home
// is on another node the virtual-time cost model automatically charges the
// fabric round trips (CostModel::remote_node) — an acquire from a remote
// node *is* more expensive than from the home node, with no extra code.
//
// Acquire/renew attempts emit fault::checkpoint(kLeaseRenew) and every
// expiry decision emits kLeaseExpire, so the systematic checker (DFS/PCT)
// and the fault injector interleave lease handoffs like any other lock-API
// hook; node partitions (fault::partition_heal) stall the renewal path past
// expiry, which is exactly the stale-holder scenario the epoch fence exists
// for.
#pragma once

#include <atomic>
#include <cstdint>

#include "common/platform.h"
#include "fault/fault.h"
#include "htm/shared.h"
#include "locks/deadline.h"
#include "locks/sgl.h"

namespace sprwl::dist {

struct LeaseConfig {
  /// Lease validity from grant or renewal, virtual cycles. Bounds the
  /// recovery latency after a holder crash: the next grant happens at most
  /// one term after the crash (plus the grant itself).
  std::uint64_t term = 200'000;
  /// Retry/backoff budget for acquire (the PR 2 hardening pattern):
  /// exponential backoff between attempts, capped; acquire gives up after
  /// `acquire_budget` attempts (0 = unbounded).
  int acquire_budget = 0;
  std::uint64_t backoff_base = 500;
  std::uint64_t backoff_max = 16'000;
};

/// A granted lease as cached by the holder. `expiry` is the authoritative
/// expiry as of the grant/last renewal; the service only ever moves the
/// real expiry *forward* while the same epoch is held (renewals by this
/// holder), so `now() < expiry` is a sound store guard: it implies the
/// authoritative lease is unexpired, hence no later epoch exists yet.
struct Lease {
  std::uint64_t epoch = 0;
  std::uint64_t expiry = 0;
  int node = -1;

  bool valid() const noexcept { return node >= 0; }
};

struct LeaseStats {
  std::atomic<std::uint64_t> grants{0};
  std::atomic<std::uint64_t> joins{0};        ///< acquired-by-sharing (same node)
  std::atomic<std::uint64_t> renewals{0};
  std::atomic<std::uint64_t> renewals_rejected{0};
  std::atomic<std::uint64_t> expiries{0};     ///< grants over an expired holder
  std::atomic<std::uint64_t> acquire_failures{0};
  std::atomic<std::uint64_t> partition_stalls{0};
};

class LeaseService {
 public:
  explicit LeaseService(const LeaseConfig& cfg) : cfg_(cfg) {}

  LeaseService(const LeaseService&) = delete;
  LeaseService& operator=(const LeaseService&) = delete;

  /// Acquire the lease for `node` (or join the node's existing lease — one
  /// lease per node, shared by its threads). Spins with bounded exponential
  /// backoff while another node holds an unexpired lease; gives up at
  /// `deadline` (locks::kNoDeadline = none) or after cfg.acquire_budget
  /// attempts. Returns an invalid Lease on failure. `fresh` (optional) is
  /// set when this call performed the grant itself — the caller owning a
  /// fresh epoch must run recovery before the node uses the lease
  /// (lock_service.h).
  Lease acquire(int node, std::uint64_t deadline = locks::kNoDeadline,
                bool* fresh = nullptr) {
    if (fresh != nullptr) *fresh = false;
    std::uint64_t backoff = cfg_.backoff_base;
    for (int attempt = 0;; ++attempt) {
      fault::checkpoint(fault::InjectPoint::kLeaseRenew, this);
      stall_for_partition(node);
      svc_.lock();
      const std::uint64_t now = platform::now();
      const std::uint64_t holder = holder_.load();
      const std::uint64_t expiry = expiry_.load();
      const auto self = static_cast<std::uint64_t>(node) + 1;
      if (holder == self && now < expiry) {
        // The node already holds it: share the grant.
        const Lease l{epoch_.load(), expiry, node};
        svc_.unlock();
        stats_.joins.fetch_add(1, std::memory_order_relaxed);
        return l;
      }
      const bool over_expired = holder != 0 && now >= expiry;
      if (holder == 0 || over_expired) {
        // Grant: epoch bump under the service lock, seqlock-published so
        // validate() never observes a half-written grant. An expired
        // holder's epoch dies exactly once — the re-check above ran under
        // the same lock that serialized this bump, so two racers cannot
        // both observe the same expiry (the "double-expiry" edge case,
        // tests/dist/test_lease.cpp).
        const std::uint64_t s = seq_.load();
        seq_.store(s + 1);
        const std::uint64_t e = epoch_.load() + 1;
        epoch_.store(e);
        holder_.store(self);
        expiry_.store(now + cfg_.term);
        seq_.store(s + 2);
        svc_.unlock();
        stats_.grants.fetch_add(1, std::memory_order_relaxed);
        if (over_expired) {
          stats_.expiries.fetch_add(1, std::memory_order_relaxed);
          fault::checkpoint(fault::InjectPoint::kLeaseExpire, this);
        }
        if (fresh != nullptr) *fresh = true;
        return Lease{e, now + cfg_.term, node};
      }
      svc_.unlock();
      if (locks::deadline_expired(deadline) ||
          (cfg_.acquire_budget > 0 && attempt + 1 >= cfg_.acquire_budget)) {
        stats_.acquire_failures.fetch_add(1, std::memory_order_relaxed);
        return Lease{};
      }
      // Held elsewhere: back off (bounded, deadline-capped) and retry.
      const std::uint64_t until =
          locks::cap_wait(platform::now() + backoff, deadline);
      platform::wait_until(until);
      if (backoff < cfg_.backoff_max) backoff *= 2;
    }
  }

  /// Extend the holder's lease by one term. Fails — and the holder must
  /// stop writing — when the lease expired (someone else may already hold
  /// a fresh epoch) or was re-granted. A partition stalls the attempt
  /// until the heal, which is precisely how a renewal "arrives late".
  bool renew(Lease& l) {
    fault::checkpoint(fault::InjectPoint::kLeaseRenew, this);
    stall_for_partition(l.node);
    svc_.lock();
    const std::uint64_t now = platform::now();
    const bool ours = epoch_.load() == l.epoch &&
                      holder_.load() == static_cast<std::uint64_t>(l.node) + 1;
    if (ours && now < expiry_.load()) {
      const std::uint64_t s = seq_.load();
      seq_.store(s + 1);
      expiry_.store(now + cfg_.term);
      seq_.store(s + 2);
      svc_.unlock();
      l.expiry = now + cfg_.term;
      stats_.renewals.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
    svc_.unlock();
    stats_.renewals_rejected.fetch_add(1, std::memory_order_relaxed);
    fault::checkpoint(fault::InjectPoint::kLeaseExpire, this);
    return false;
  }

  /// Lock-free validity check (seqlock read): the lease's epoch is still
  /// the granted one, held by the lease's node, and unexpired.
  bool validate(const Lease& l) {
    for (;;) {
      const std::uint64_t s0 = seq_.load();
      if ((s0 & 1) != 0) {
        platform::pause();
        continue;
      }
      const std::uint64_t e = epoch_.load();
      const std::uint64_t h = holder_.load();
      const std::uint64_t x = expiry_.load();
      if (seq_.load() != s0) continue;
      return e == l.epoch && h == static_cast<std::uint64_t>(l.node) + 1 &&
             platform::now() < x;
    }
  }

  /// Voluntary release. A crashed holder never calls this — its lease
  /// expires in virtual time instead, which is what bounds recovery.
  void release(const Lease& l) {
    svc_.lock();
    if (epoch_.load() == l.epoch &&
        holder_.load() == static_cast<std::uint64_t>(l.node) + 1) {
      const std::uint64_t s = seq_.load();
      seq_.store(s + 1);
      holder_.store(0);
      expiry_.store(platform::now());
      seq_.store(s + 2);
    }
    svc_.unlock();
  }

  /// Current epoch (diagnostics / recovery gate).
  std::uint64_t epoch() const { return epoch_.raw_load(); }

  const LeaseConfig& config() const noexcept { return cfg_; }
  const LeaseStats& stats() const noexcept { return stats_; }

 private:
  /// Model a partitioned node's service RPC: the message is stuck until
  /// the partition heals. Waiting in virtual time naturally pushes the
  /// retry past the lease expiry when the partition outlives the term.
  void stall_for_partition(int node) {
    const std::uint64_t heal = fault::partition_heal(node, platform::now());
    if (heal != 0) {
      stats_.partition_stalls.fetch_add(1, std::memory_order_relaxed);
      platform::wait_until(heal);
    }
  }

  LeaseConfig cfg_;
  locks::SglLock svc_;                  // serializes grant/renew/release
  // Line-anchored so the words' grouping into cache lines (line_of keys on
  // addr >> 6) never depends on where the service was allocated — stack
  // objects would otherwise price transfers differently run to run.
  alignas(64) htm::Shared<std::uint64_t> seq_;  // seqlock for validate()
  htm::Shared<std::uint64_t> epoch_;    // bumps on every grant
  htm::Shared<std::uint64_t> holder_;   // node + 1; 0 = free
  htm::Shared<std::uint64_t> expiry_;   // absolute virtual time
  LeaseStats stats_;
};

}  // namespace sprwl::dist
