// SNZI — Scalable NonZero Indicator (Ellen, Lev, Luchangco, Moir, PODC'07).
//
// A SNZI object supports arrive()/depart() and a query() that answers
// "is the surplus (arrivals - departures) non-zero?". A tree of counters
// spreads contention: a node only touches its parent when its own count
// transitions between zero and non-zero, so arrive/depart cost is constant
// in the common case and logarithmic in the worst case, while query() reads
// a single word at the root.
//
// SpRWL (Section 3.4 of the paper) uses SNZI as an alternative reader
// tracking scheme: readers arrive/depart instead of setting their state
// flag, and writers check one root word inside their transaction instead of
// scanning an O(threads) state array — trading reader overhead for a
// smaller writer footprint (evaluated in Fig. 6).
//
// Implementation notes:
//  * Counts are stored in half-units (the algorithm's intermediate "1/2"
//    state) packed with a version number into one 64-bit word per node:
//    low 32 bits = 2*count, high 32 bits = version.
//  * The root keeps its indicator implicitly: query() == (root count != 0).
//    Packing the indicator into the counter word makes the original
//    paper's separate-indicator protocol unnecessary while preserving the
//    key property: query() is true whenever any completed arrival is
//    outstanding (transient half-states only cause conservative "true").
//  * Nodes are Shared<> cells: writers read the root transactionally, so a
//    reader's arrival invalidates a writer that already checked — the same
//    strong-isolation argument as for the state-flag scheme.
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/cacheline.h"
#include "common/costs.h"
#include "common/platform.h"
#include "htm/shared.h"

namespace sprwl::snzi {

class Snzi {
 public:
  struct Config {
    /// Number of tree levels; 1 means a single (root) counter.
    int levels = 3;
    /// Socket-major leaf layout (topology-aware reader tracking, DESIGN.md
    /// §11): with sockets > 1 the leaf row is partitioned into `sockets`
    /// contiguous blocks and slot s (socket-major dense tid, see
    /// sim::Topology) maps into its own socket's block — so the leaf RMWs
    /// of same-socket arrivals share socket-local lines and never ping-pong
    /// across the interconnect. Zero-to-nonzero transitions still propagate
    /// to the shared root, which is the only word writers query. The
    /// defaults reproduce the flat slot-modulo-leaves layout bit for bit.
    int sockets = 1;
    int cores_per_socket = 0;
  };

  /// Deepest supported tree. 16 levels = 32768 leaves, enough for any
  /// max_threads the simulator models; auto-sizing callers (SpRWLock)
  /// derive their level count from max_threads and clamp to this.
  static constexpr int kMaxLevels = 16;

  Snzi() : Snzi(Config{}) {}

  explicit Snzi(Config cfg) {
    assert(cfg.levels >= 1 && cfg.levels <= kMaxLevels);
    std::size_t count = 0;
    for (int l = 0; l < cfg.levels; ++l) count += std::size_t{1} << l;
    nodes_ = std::vector<CacheLinePadded<htm::Shared<std::uint64_t>>>(count);
    first_leaf_ = count - (std::size_t{1} << (cfg.levels - 1));
    leaves_ = count - first_leaf_;
    if (cfg.sockets > 1 && cfg.cores_per_socket > 0 &&
        static_cast<std::size_t>(cfg.sockets) <= leaves_) {
      sockets_ = static_cast<std::size_t>(cfg.sockets);
      cores_per_socket_ = static_cast<std::size_t>(cfg.cores_per_socket);
      block_ = leaves_ / sockets_;
    }
  }

  /// Register one arrival for `slot` (typically a thread id; mapped onto a
  /// leaf). Multiple arrivals per slot are allowed and counted.
  void arrive(int slot) {
    ContentionScope c(*this);
    arrive_at(leaf_of(slot));
  }

  /// Match one prior arrive() from the same slot.
  void depart(int slot) {
    ContentionScope c(*this);
    depart_at(leaf_of(slot));
  }

  /// True iff the surplus may be non-zero. Exact when no arrival is
  /// mid-flight; conservatively true during one. Transaction-aware: called
  /// inside a writer transaction this subscribes to the root word.
  bool query() const { return count_of(nodes_[0]->load()) != 0; }

  /// Exact surplus at the root in completed arrivals (root never holds a
  /// half-state for long; used by tests). Not transaction-aware.
  std::uint64_t root_count_raw() const noexcept {
    return count_of(nodes_[0]->raw_load());
  }

  std::size_t leaf_count() const noexcept { return leaves_; }

  /// Heap bytes held by the tree (per-lock footprint accounting).
  std::size_t footprint_bytes() const noexcept {
    return sizeof(*this) +
           nodes_.capacity() * sizeof(CacheLinePadded<htm::Shared<std::uint64_t>>);
  }

  /// Leaf row index (0-based) that `slot` arrives at — the layout contract
  /// the socket-major tests pin. Departures use the same mapping, so a slot
  /// that migrates sockets between arrive and depart still matches its own
  /// arrival (the mapping depends only on the slot id, never on where the
  /// call runs).
  std::size_t leaf_index(int slot) const noexcept {
    return leaf_of(slot) - first_leaf_;
  }

 private:
  /// Update-side contention model: concurrent arrive/depart operations
  /// RMW the same few tree lines, so each pays proportionally to how many
  /// others are mid-update (cache-line handoff queuing, as in SpinMutex).
  /// With long readers the tree is quiet and the charge vanishes — the
  /// workload dependence Fig. 6 of the paper quantifies.
  class ContentionScope {
   public:
    explicit ContentionScope(const Snzi& s) : snzi_(s) {
      const int busy = snzi_.in_update_.fetch_add(1, std::memory_order_relaxed);
      if (busy > 0) {
        platform::advance(static_cast<std::uint64_t>(busy) * g_costs.contention_unit);
      }
    }
    ~ContentionScope() {
      snzi_.in_update_.fetch_sub(1, std::memory_order_relaxed);
    }
    ContentionScope(const ContentionScope&) = delete;
    ContentionScope& operator=(const ContentionScope&) = delete;

   private:
    const Snzi& snzi_;
  };

  // word layout: [ version : 32 | 2*count : 32 ]
  static std::uint64_t count_of(std::uint64_t w) noexcept { return w & 0xffffffffu; }
  static std::uint64_t version_of(std::uint64_t w) noexcept { return w >> 32; }
  static std::uint64_t make(std::uint64_t c2, std::uint64_t v) noexcept {
    return (v << 32) | (c2 & 0xffffffffu);
  }

  std::size_t leaf_of(int slot) const noexcept {
    const auto s = static_cast<std::size_t>(slot);
    if (sockets_ <= 1) return first_leaf_ + s % leaves_;
    // Socket-major: the slot's socket selects a contiguous leaf block, the
    // within-socket index folds into it.
    const std::size_t socket = (s / cores_per_socket_) % sockets_;
    const std::size_t local = s % cores_per_socket_;
    return first_leaf_ + socket * block_ + local % block_;
  }
  static bool is_root(std::size_t i) noexcept { return i == 0; }
  static std::size_t parent_of(std::size_t i) noexcept { return (i - 1) / 2; }

  void arrive_at(std::size_t i) {
    auto& x = *nodes_[i];
    bool succ = false;
    int undo = 0;
    while (!succ) {
      const std::uint64_t w = x.load();
      const std::uint64_t c2 = count_of(w);
      const std::uint64_t v = version_of(w);
      if (c2 >= 2) {  // count >= 1: plain increment
        if (x.cas(w, make(c2 + 2, v))) succ = true;
      } else if (c2 == 0) {  // 0 -> 1/2: start a fresh epoch of this node
        if (x.cas(w, make(1, v + 1))) {
          succ = true;
          // fall through to complete the 1/2 -> 1 transition below
          finish_half(i, v + 1, undo);
        }
      } else {  // c2 == 1: someone (possibly us, above) is mid-transition
        finish_half(i, v, undo);
      }
    }
    while (undo-- > 0) depart_at(parent_of(i));
  }

  /// Helps the 1/2 -> 1 transition of node i at version v: arrives at the
  /// parent first, then tries to publish the full unit. A lost CAS means
  /// another helper won; the surplus parent arrival is undone by the
  /// caller (counted via `undo`).
  void finish_half(std::size_t i, std::uint64_t v, int& undo) {
    if (!is_root(i)) arrive_at(parent_of(i));
    if (!nodes_[i]->cas(make(1, v), make(2, v))) {
      if (!is_root(i)) ++undo;
    }
  }

  void depart_at(std::size_t i) {
    auto& x = *nodes_[i];
    for (;;) {
      const std::uint64_t w = x.load();
      const std::uint64_t c2 = count_of(w);
      const std::uint64_t v = version_of(w);
      assert(c2 >= 2 && "depart without matching arrive");
      if (x.cas(w, make(c2 - 2, v))) {
        if (c2 == 2 && !is_root(i)) depart_at(parent_of(i));
        return;
      }
    }
  }

  std::vector<CacheLinePadded<htm::Shared<std::uint64_t>>> nodes_;
  std::size_t first_leaf_ = 0;
  std::size_t leaves_ = 0;
  // Socket-major layout (1/0/0 = flat slot-modulo-leaves, the default).
  std::size_t sockets_ = 1;
  std::size_t cores_per_socket_ = 0;
  std::size_t block_ = 0;
  mutable std::atomic<int> in_update_{0};
};

}  // namespace sprwl::snzi
