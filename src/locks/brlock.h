// Big-Reader Lock (BRLock), after the Linux-kernel brlock the paper cites.
//
// A reader acquires only its own per-thread mutex (one uncontended CAS on a
// private cache line), so read-side cost is constant and contention-free.
// A writer acquires a global mutex (serializing writers) and then every
// per-thread mutex in order, making writes O(threads) — the classic
// read-biased trade-off the paper's evaluation shows collapsing once
// updates are frequent.
#pragma once

#include <utility>
#include <vector>

#include "common/cacheline.h"
#include "common/platform.h"
#include "common/scope_exit.h"
#include "common/spin_mutex.h"
#include "locks/deadline.h"
#include "locks/stats.h"

namespace sprwl::locks {

class BRLock {
 public:
  explicit BRLock(int max_threads)
      : per_thread_(static_cast<std::size_t>(max_threads)), modes_(max_threads) {}

  template <class F>
  void read(int /*cs_id*/, F&& f) {
    auto& mine = *per_thread_[static_cast<std::size_t>(platform::thread_id())];
    mine.lock();
    platform::sched_point(SchedKind::kReadEnter, this);
    {
      ScopeExit release([&] { mine.unlock(); });
      std::forward<F>(f)();
      platform::sched_point(SchedKind::kReadExit, this);
    }
    modes_.record_read(CommitMode::kPessimistic);
  }

  template <class F>
  void write(int /*cs_id*/, F&& f) {
    global_.lock();
    for (auto& m : per_thread_) m->lock();
    platform::sched_point(SchedKind::kWriteEnter, this);
    {
      ScopeExit release([&] {
        for (auto it = per_thread_.rbegin(); it != per_thread_.rend(); ++it) {
          (*it)->unlock();
        }
        global_.unlock();
      });
      std::forward<F>(f)();
      platform::sched_point(SchedKind::kWriteExit, this);
    }
    modes_.record_write(CommitMode::kPessimistic);
  }

  /// Deadline-bounded read: one timed mutex acquisition, nothing to unwind.
  template <class F>
  AcquireResult try_read_for(int /*cs_id*/, std::uint64_t budget_cycles,
                             F&& f) {
    const std::uint64_t deadline = checked_deadline(budget_cycles);
    auto& mine = *per_thread_[static_cast<std::size_t>(platform::thread_id())];
    if (!mine.try_lock_until(deadline)) return AcquireResult::kTimeout;
    platform::sched_point(SchedKind::kReadEnter, this);
    {
      ScopeExit release([&] { mine.unlock(); });
      std::forward<F>(f)();
      platform::sched_point(SchedKind::kReadExit, this);
    }
    modes_.record_read(CommitMode::kPessimistic);
    return AcquireResult::kAcquired;
  }

  /// Deadline-bounded write: the O(threads) acquisition sweep can expire
  /// mid-way, in which case the already-held prefix is released in reverse
  /// (same order as the normal exit) along with the global mutex — a
  /// half-swept writer must leave no reader mutex held.
  template <class F>
  AcquireResult try_write_for(int /*cs_id*/, std::uint64_t budget_cycles,
                              F&& f) {
    const std::uint64_t deadline = checked_deadline(budget_cycles);
    if (!global_.try_lock_until(deadline)) return AcquireResult::kTimeout;
    for (std::size_t i = 0; i < per_thread_.size(); ++i) {
      if (!per_thread_[i]->try_lock_until(deadline)) {
        while (i > 0) per_thread_[--i]->unlock();
        global_.unlock();
        return AcquireResult::kTimeout;
      }
    }
    platform::sched_point(SchedKind::kWriteEnter, this);
    {
      ScopeExit release([&] {
        for (auto it = per_thread_.rbegin(); it != per_thread_.rend(); ++it) {
          (*it)->unlock();
        }
        global_.unlock();
      });
      std::forward<F>(f)();
      platform::sched_point(SchedKind::kWriteExit, this);
    }
    modes_.record_write(CommitMode::kPessimistic);
    return AcquireResult::kAcquired;
  }

  LockStats stats() const { return modes_.snapshot(); }
  void reset_stats() { modes_.reset(); }
  static const char* name() noexcept { return "BRLock"; }

 private:
  std::vector<CacheLinePadded<SpinMutex>> per_thread_;
  SpinMutex global_;
  ModeRecorder modes_;
};

}  // namespace sprwl::locks
