// The single-global-lock (SGL) used as the HTM fallback path.
//
// The lock word is a Shared<> cell so that transactions can *subscribe* to
// it: reading it inside a transaction adds it to the read set, and any
// later acquisition invalidates the transaction — the standard TLE
// "lock-subscription" idiom (Rajwar & Goodman). The word doubles as a
// version counter (LSB = held, upper bits = acquisition count), which the
// versioned-SGL reader-starvation fix of the paper's Section 3.3 uses.
#pragma once

#include <cstdint>

#include "common/platform.h"
#include "htm/shared.h"
#include "locks/deadline.h"

namespace sprwl::locks {

class SglLock {
 public:
  /// Transaction-aware: called inside a transaction this subscribes the
  /// caller to the lock word.
  bool is_locked() const { return (word_.load() & 1) != 0; }

  /// Number of acquisitions so far (the "lock version" of Section 3.3).
  std::uint64_t version() const { return word_.load() >> 1; }

  /// Raw combined state for version+locked in one load.
  std::uint64_t state() const { return word_.load(); }

  /// Uncharged raw view of the combined state, bypassing the engine
  /// dispatch entirely. The snapshot-reader pin guard needs it: after the
  /// pin, Shared::load would resolve this word *as of the snapshot* and
  /// validate unconditionally (core/sprwl.h read_snapshot).
  std::uint64_t state_raw() const noexcept { return word_.raw_load(); }

  void lock() {
    for (;;) {
      const std::uint64_t w = word_.load();
      if ((w & 1) == 0 && word_.cas(w, w + 1)) return;
      platform::pause();
    }
  }

  /// lock() with an absolute virtual-time deadline (~0 = none): the exact
  /// load/cas/pause sequence of lock(), plus a free expiry check per
  /// iteration, so a kNoDeadline caller charges identically to lock(). A
  /// spin whose expiry would land mid-pause sleeps to exactly the deadline
  /// instead (deadline_pause), so timeouts are observed at now == deadline.
  bool lock_until(std::uint64_t deadline) {
    for (;;) {
      const std::uint64_t w = word_.load();
      if ((w & 1) == 0 && word_.cas(w, w + 1)) return true;
      if (deadline_expired(deadline)) return false;
      deadline_pause(deadline);
    }
  }

  bool try_lock() {
    const std::uint64_t w = word_.load();
    return (w & 1) == 0 && word_.cas(w, w + 1);
  }

  void unlock() {
    const std::uint64_t w = word_.load();
    word_.store(w + 1);  // odd -> even: releases and bumps the version
  }

 private:
  htm::Shared<std::uint64_t> word_;
};

}  // namespace sprwl::locks
