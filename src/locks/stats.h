// Commit-mode accounting shared by all lock implementations.
//
// The paper's evaluation breaks critical sections down by the mode in which
// they eventually committed: HTM, ROT, GL (pessimistic fallback) and Unins
// (SpRWL's uninstrumented reader path). Every lock in this library keeps
// per-thread padded counters so the harness can regenerate those plots.
#pragma once

#include <cstdint>
#include <vector>

#include "common/cacheline.h"
#include "common/platform.h"

namespace sprwl::locks {

/// Mode in which one critical section completed.
enum class CommitMode : std::uint8_t { kHtm, kRot, kGl, kUnins, kPessimistic };

struct OpModeCounts {
  std::uint64_t htm = 0;
  std::uint64_t rot = 0;
  std::uint64_t gl = 0;
  std::uint64_t unins = 0;
  std::uint64_t pessimistic = 0;  ///< always-pessimistic locks (RWL, BRLock, ...)

  std::uint64_t total() const noexcept { return htm + rot + gl + unins + pessimistic; }

  void bump(CommitMode m) noexcept {
    switch (m) {
      case CommitMode::kHtm: ++htm; break;
      case CommitMode::kRot: ++rot; break;
      case CommitMode::kGl: ++gl; break;
      case CommitMode::kUnins: ++unins; break;
      case CommitMode::kPessimistic: ++pessimistic; break;
    }
  }

  OpModeCounts& operator+=(const OpModeCounts& o) noexcept {
    htm += o.htm;
    rot += o.rot;
    gl += o.gl;
    unins += o.unins;
    pessimistic += o.pessimistic;
    return *this;
  }
};

struct LockStats {
  OpModeCounts reads;
  OpModeCounts writes;
};

/// Per-thread, cache-line-padded recorder; snapshot() aggregates. Recording
/// is uncharged (bookkeeping, not modelled work).
class ModeRecorder {
 public:
  explicit ModeRecorder(int max_threads)
      : slots_(static_cast<std::size_t>(max_threads)) {}

  void record_read(CommitMode m) { mine().reads.bump(m); }
  void record_write(CommitMode m) { mine().writes.bump(m); }

  LockStats snapshot() const {
    LockStats s;
    for (const auto& slot : slots_) {
      s.reads += slot.value.reads;
      s.writes += slot.value.writes;
    }
    return s;
  }

  void reset() {
    for (auto& slot : slots_) slot.value = LockStats{};
  }

 private:
  LockStats& mine() { return slots_[static_cast<std::size_t>(platform::thread_id())].value; }

  std::vector<CacheLinePadded<LockStats>> slots_;
};

}  // namespace sprwl::locks
