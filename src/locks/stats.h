// Commit-mode accounting shared by all lock implementations.
//
// The paper's evaluation breaks critical sections down by the mode in which
// they eventually committed: HTM, ROT, GL (pessimistic fallback) and Unins
// (SpRWL's uninstrumented reader path). Every lock in this library keeps
// per-thread padded counters so the harness can regenerate those plots.
#pragma once

#include <cstdint>
#include <vector>

#include "common/cacheline.h"
#include "common/platform.h"
#include "htm/htm.h"

namespace sprwl::locks {

/// Mode in which one critical section completed.
enum class CommitMode : std::uint8_t { kHtm, kRot, kGl, kUnins, kPessimistic };

/// Why an HTM lock left its speculative path for the pessimistic fallback
/// (or refused to, for kLemmingAvoided). Purely-pessimistic locks never
/// escalate; their counters stay zero.
enum class Escalation : std::uint8_t {
  kRetryExhausted,   ///< burned the configured HTM retry budget
  kCapacity,        ///< capacity abort: retrying cannot help, fall back now
  kStalledReader,   ///< reader-stall watchdog fired (writer waited too long)
  kBudgetExhausted,  ///< virtual-time retry budget exceeded (abort storm)
  kLemmingAvoided,   ///< lock-busy abort forgiven: attempt not counted
};

/// Per-lock abort-cause breakdown. The engine keeps aggregate counters for
/// every transaction in the process; these are the same causes attributed
/// to *this lock's* critical sections, with explicit aborts split into the
/// classes the paper reports (lock-subscription vs. active-reader).
struct AbortBreakdown {
  std::uint64_t conflict = 0;
  std::uint64_t capacity = 0;
  std::uint64_t explicit_lock_busy = 0;  ///< subscription found the GL held
  std::uint64_t explicit_reader = 0;     ///< SpRWL/RW-LE "reader" abort class
  std::uint64_t explicit_other = 0;
  std::uint64_t spurious = 0;            ///< modelled interrupts / syscalls
  std::uint64_t total() const noexcept {
    return conflict + capacity + explicit_lock_busy + explicit_reader +
           explicit_other + spurious;
  }
  AbortBreakdown& operator+=(const AbortBreakdown& o) noexcept {
    conflict += o.conflict;
    capacity += o.capacity;
    explicit_lock_busy += o.explicit_lock_busy;
    explicit_reader += o.explicit_reader;
    explicit_other += o.explicit_other;
    spurious += o.spurious;
    return *this;
  }
};

/// Escalation counters (graceful-degradation accounting; DESIGN.md §8).
struct EscalationCounts {
  std::uint64_t retry_exhausted = 0;
  std::uint64_t capacity = 0;
  std::uint64_t stalled_reader = 0;
  std::uint64_t budget_exhausted = 0;
  std::uint64_t lemming_avoided = 0;
  std::uint64_t fallbacks() const noexcept {
    return retry_exhausted + capacity + stalled_reader + budget_exhausted;
  }
  EscalationCounts& operator+=(const EscalationCounts& o) noexcept {
    retry_exhausted += o.retry_exhausted;
    capacity += o.capacity;
    stalled_reader += o.stalled_reader;
    budget_exhausted += o.budget_exhausted;
    lemming_avoided += o.lemming_avoided;
    return *this;
  }
};

struct OpModeCounts {
  std::uint64_t htm = 0;
  std::uint64_t rot = 0;
  std::uint64_t gl = 0;
  std::uint64_t unins = 0;
  std::uint64_t pessimistic = 0;  ///< always-pessimistic locks (RWL, BRLock, ...)

  std::uint64_t total() const noexcept { return htm + rot + gl + unins + pessimistic; }

  void bump(CommitMode m) noexcept {
    switch (m) {
      case CommitMode::kHtm: ++htm; break;
      case CommitMode::kRot: ++rot; break;
      case CommitMode::kGl: ++gl; break;
      case CommitMode::kUnins: ++unins; break;
      case CommitMode::kPessimistic: ++pessimistic; break;
    }
  }

  OpModeCounts& operator+=(const OpModeCounts& o) noexcept {
    htm += o.htm;
    rot += o.rot;
    gl += o.gl;
    unins += o.unins;
    pessimistic += o.pessimistic;
    return *this;
  }
};

struct LockStats {
  OpModeCounts reads;
  OpModeCounts writes;
  AbortBreakdown aborts;
  EscalationCounts escalations;
};

/// Per-thread, cache-line-padded recorder; snapshot() aggregates. Recording
/// is uncharged (bookkeeping, not modelled work).
class ModeRecorder {
 public:
  explicit ModeRecorder(int max_threads)
      : slots_(static_cast<std::size_t>(max_threads)) {}

  void record_read(CommitMode m) { mine().reads.bump(m); }
  void record_write(CommitMode m) { mine().writes.bump(m); }

  /// Attributes one failed HTM attempt to this lock. `lock_busy_code` and
  /// `reader_code` are the lock's explicit-abort codes, used to split
  /// explicit aborts into the classes the paper plots.
  void record_abort(const htm::TxStatus& status, std::uint8_t lock_busy_code,
                    std::uint8_t reader_code = 0) {
    AbortBreakdown& b = mine().aborts;
    switch (status.cause) {
      case htm::AbortCause::kNone: break;
      case htm::AbortCause::kConflict: ++b.conflict; break;
      case htm::AbortCause::kCapacity: ++b.capacity; break;
      case htm::AbortCause::kSpurious: ++b.spurious; break;
      case htm::AbortCause::kExplicit:
        if (status.code == lock_busy_code) {
          ++b.explicit_lock_busy;
        } else if (reader_code != 0 && status.code == reader_code) {
          ++b.explicit_reader;
        } else {
          ++b.explicit_other;
        }
        break;
    }
  }

  void record_escalation(Escalation e) {
    EscalationCounts& c = mine().escalations;
    switch (e) {
      case Escalation::kRetryExhausted: ++c.retry_exhausted; break;
      case Escalation::kCapacity: ++c.capacity; break;
      case Escalation::kStalledReader: ++c.stalled_reader; break;
      case Escalation::kBudgetExhausted: ++c.budget_exhausted; break;
      case Escalation::kLemmingAvoided: ++c.lemming_avoided; break;
    }
  }

  LockStats snapshot() const {
    LockStats s;
    for (const auto& slot : slots_) {
      s.reads += slot.value.reads;
      s.writes += slot.value.writes;
      s.aborts += slot.value.aborts;
      s.escalations += slot.value.escalations;
    }
    return s;
  }

  void reset() {
    for (auto& slot : slots_) slot.value = LockStats{};
  }

  /// Heap bytes held by the per-thread slots (per-lock footprint accounting).
  std::size_t footprint_bytes() const noexcept {
    return slots_.capacity() * sizeof(CacheLinePadded<LockStats>);
  }

 private:
  LockStats& mine() { return slots_[static_cast<std::size_t>(platform::thread_id())].value; }

  std::vector<CacheLinePadded<LockStats>> slots_;
};

}  // namespace sprwl::locks
