// Queue-based fair reader-writer lock, after Mellor-Crummey & Scott
// (PPoPP'91) — the classic RWLock the paper cites ([31]) whose point is to
// avoid spinning on global variables: every thread spins on a flag in its
// own queue node, and the lock state is a tail pointer plus a reader count.
//
// This is the "fair" variant: requests are served in arrival order; a
// reader arriving behind a waiting writer blocks, and consecutive readers
// unblock each other in a cascade.
//
// Queue nodes live on the acquirer's stack: by the time start_* returns, a
// successor that obtained our node from the tail exchange has finished
// touching it (it stores our `next` last), and end_* waits for `next`
// whenever the tail CAS tells us a successor exists.
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <utility>

#include "common/costs.h"
#include "common/platform.h"
#include "locks/stats.h"

namespace sprwl::locks {

class McsRWLock {
 public:
  explicit McsRWLock(int max_threads) : modes_(max_threads) {}

  template <class F>
  void read(int /*cs_id*/, F&& f) {
    QNode node(kReader);
    start_read(node);
    platform::sched_point(SchedKind::kReadEnter, this);
    {
      ScopeExitRead release(*this, node);
      std::forward<F>(f)();
      platform::sched_point(SchedKind::kReadExit, this);
    }
    modes_.record_read(CommitMode::kPessimistic);
  }

  template <class F>
  void write(int /*cs_id*/, F&& f) {
    QNode node(kWriter);
    start_write(node);
    platform::sched_point(SchedKind::kWriteEnter, this);
    {
      ScopeExitWrite release(*this, node);
      std::forward<F>(f)();
      platform::sched_point(SchedKind::kWriteExit, this);
    }
    modes_.record_write(CommitMode::kPessimistic);
  }

  LockStats stats() const { return modes_.snapshot(); }
  void reset_stats() { modes_.reset(); }
  static const char* name() noexcept { return "MCS-RW"; }

 private:
  enum Class : std::uint32_t { kReader = 0, kWriter = 1 };
  enum Succ : std::uint32_t { kNone = 0, kSuccReader = 1, kSuccWriter = 2 };

  // Node state packs (blocked, successor_class) into one word so the
  // reader-behind-reader hand-off can CAS both together, exactly as the
  // original algorithm requires.
  static constexpr std::uint32_t kBlockedBit = 4;
  static constexpr std::uint32_t pack(bool blocked, Succ s) noexcept {
    return (blocked ? kBlockedBit : 0) | s;
  }
  static constexpr bool blocked_of(std::uint32_t v) noexcept {
    return (v & kBlockedBit) != 0;
  }
  static constexpr Succ succ_of(std::uint32_t v) noexcept {
    return static_cast<Succ>(v & 3);
  }

  struct QNode {
    explicit QNode(Class c) : cls(c) {}
    const Class cls;
    std::atomic<QNode*> next{nullptr};
    std::atomic<std::uint32_t> state{pack(true, kNone)};
  };

  /// Clears only the blocked bit: a successor may be concurrently CASing
  /// its class into the same word, which must survive the unblock.
  static void unblock(QNode& n) {
    n.state.fetch_and(~kBlockedBit, std::memory_order_acq_rel);
  }

  void start_read(QNode& node) {
    platform::advance(g_costs.cas);
    QNode* pred = tail_.exchange(&node, std::memory_order_acq_rel);
    if (pred == nullptr) {
      reader_count_.fetch_add(1, std::memory_order_acq_rel);
      unblock(node);
    } else {
      std::uint32_t expected = pack(true, kNone);
      platform::advance(g_costs.cas);
      if (pred->cls == kWriter ||
          pred->state.compare_exchange_strong(expected,
                                              pack(true, kSuccReader),
                                              std::memory_order_acq_rel)) {
        // pred is a writer or a still-blocked reader: it will pass us the
        // baton. Publish ourselves, then wait.
        pred->next.store(&node, std::memory_order_release);
        while (blocked_of(node.state.load(std::memory_order_acquire))) {
          platform::pause();
        }
      } else {
        // pred is an active reader: join immediately.
        reader_count_.fetch_add(1, std::memory_order_acq_rel);
        pred->next.store(&node, std::memory_order_release);
        unblock(node);
      }
    }
    // Cascade: if a reader queued up behind us while we were blocked,
    // admit it now.
    if (succ_of(node.state.load(std::memory_order_acquire)) == kSuccReader) {
      QNode* next = nullptr;
      while ((next = node.next.load(std::memory_order_acquire)) == nullptr) {
        platform::pause();
      }
      reader_count_.fetch_add(1, std::memory_order_acq_rel);
      unblock(*next);
    }
  }

  void end_read(QNode& node) {
    platform::advance(g_costs.cas);
    QNode* expected = &node;
    if (node.next.load(std::memory_order_acquire) != nullptr ||
        !tail_.compare_exchange_strong(expected, nullptr,
                                       std::memory_order_acq_rel)) {
      QNode* next = nullptr;
      while ((next = node.next.load(std::memory_order_acquire)) == nullptr) {
        platform::pause();
      }
      if (succ_of(node.state.load(std::memory_order_acquire)) == kSuccWriter) {
        next_writer_.store(next, std::memory_order_release);
      }
    }
    platform::advance(g_costs.cas);
    if (reader_count_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      QNode* w = next_writer_.exchange(nullptr, std::memory_order_acq_rel);
      if (w != nullptr) unblock(*w);
    }
  }

  void start_write(QNode& node) {
    platform::advance(g_costs.cas);
    QNode* pred = tail_.exchange(&node, std::memory_order_acq_rel);
    if (pred == nullptr) {
      next_writer_.store(&node, std::memory_order_release);
      platform::advance(g_costs.cas);
      if (reader_count_.load(std::memory_order_acquire) == 0 &&
          next_writer_.exchange(nullptr, std::memory_order_acq_rel) == &node) {
        unblock(node);
      }
    } else {
      // Mark pred's successor class before publishing next (pred's release
      // protocol reads them in the opposite order).
      std::uint32_t cur = pred->state.load(std::memory_order_acquire);
      while (!pred->state.compare_exchange_weak(
          cur, pack(blocked_of(cur), kSuccWriter), std::memory_order_acq_rel)) {
      }
      pred->next.store(&node, std::memory_order_release);
    }
    while (blocked_of(node.state.load(std::memory_order_acquire))) {
      platform::pause();
    }
  }

  void end_write(QNode& node) {
    platform::advance(g_costs.cas);
    QNode* expected = &node;
    if (node.next.load(std::memory_order_acquire) != nullptr ||
        !tail_.compare_exchange_strong(expected, nullptr,
                                       std::memory_order_acq_rel)) {
      QNode* next = nullptr;
      while ((next = node.next.load(std::memory_order_acquire)) == nullptr) {
        platform::pause();
      }
      if (next->cls == kReader) {
        reader_count_.fetch_add(1, std::memory_order_acq_rel);
      }
      unblock(*next);
    }
  }

  class ScopeExitRead {
   public:
    ScopeExitRead(McsRWLock& l, QNode& n) : l_(l), n_(n) {}
    ~ScopeExitRead() { l_.end_read(n_); }

   private:
    McsRWLock& l_;
    QNode& n_;
  };
  class ScopeExitWrite {
   public:
    ScopeExitWrite(McsRWLock& l, QNode& n) : l_(l), n_(n) {}
    ~ScopeExitWrite() { l_.end_write(n_); }

   private:
    McsRWLock& l_;
    QNode& n_;
  };

  std::atomic<QNode*> tail_{nullptr};
  std::atomic<QNode*> next_writer_{nullptr};
  std::atomic<std::uint32_t> reader_count_{0};
  ModeRecorder modes_;
};

}  // namespace sprwl::locks
