// Phase-fair reader-writer lock (Brandenburg & Anderson, ECRTS'09), ticket
// variant (PF-T).
//
// Phase-fairness alternates reader and writer phases: a writer waits for at
// most one reader phase, and readers only wait for at most one writer. The
// paper discusses PFRWLs as the pessimistic relative of SpRWL's scheduling
// (Section 2); we include it as an extra baseline for the ablation benches.
//
// Layout of rin/rout: the upper bits count readers in units of kReader; the
// two low bits of rin carry the presence (kPres) and phase id (kPhid) of
// the writer currently in its entry protocol.
#pragma once

#include <atomic>
#include <utility>

#include "common/costs.h"
#include "common/platform.h"
#include "common/scope_exit.h"
#include "locks/deadline.h"
#include "locks/stats.h"

namespace sprwl::locks {

class PhaseFairRWLock {
 public:
  explicit PhaseFairRWLock(int max_threads) : modes_(max_threads) {}

  template <class F>
  void read(int /*cs_id*/, F&& f) {
    platform::advance(g_costs.cas);
    const std::uint32_t w = rin_.fetch_add(kReader, std::memory_order_acquire) & kWmask;
    if (w != 0) {
      // A writer is present: wait until that exact writer incarnation
      // leaves (its phase id changes or presence clears).
      while ((rin_.load(std::memory_order_acquire) & kWmask) == w) platform::pause();
    }
    platform::sched_point(SchedKind::kReadEnter, this);
    {
      ScopeExit release([&] {
        platform::advance(g_costs.cas);
        rout_.fetch_add(kReader, std::memory_order_release);
      });
      std::forward<F>(f)();
      platform::sched_point(SchedKind::kReadExit, this);
    }
    modes_.record_read(CommitMode::kPessimistic);
  }

  template <class F>
  void write(int /*cs_id*/, F&& f) {
    platform::advance(g_costs.cas);
    const std::uint32_t ticket = win_.fetch_add(1, std::memory_order_acquire);
    while (wout_.load(std::memory_order_acquire) != ticket) platform::pause();
    const std::uint32_t w = kPres | (ticket & kPhid);
    platform::advance(g_costs.cas);
    const std::uint32_t entered =
        rin_.fetch_add(w, std::memory_order_acquire) & ~kWmask;
    while (rout_.load(std::memory_order_acquire) != entered) platform::pause();
    platform::sched_point(SchedKind::kWriteEnter, this);
    {
      ScopeExit release([&] {
        platform::advance(g_costs.cas);
        rin_.fetch_sub(w, std::memory_order_release);  // open the reader phase
        platform::advance(g_costs.cas);
        wout_.fetch_add(1, std::memory_order_release);  // admit the next writer
      });
      std::forward<F>(f)();
      platform::sched_point(SchedKind::kWriteExit, this);
    }
    modes_.record_write(CommitMode::kPessimistic);
  }

  /// Deadline-bounded read. The ticket protocol cannot tolerate a reader
  /// that registered in rin and then vanishes: a writer snapshots rin's
  /// reader count at entry and spins until rout catches up, so a timed
  /// reader that bumped rout without running its section could push rout
  /// PAST a concurrent writer's snapshot and wedge it forever. Timed
  /// readers therefore never queue behind a writer — they CAS into rin
  /// only while no writer is present, which makes entry all-or-nothing:
  /// either the CAS lands (the reader is a fully ordinary reader) or
  /// nothing was published and the timeout needs no unwind. The cost is
  /// that a timed read gives up phase-fairness (it can time out during a
  /// writer phase it would have been admitted after), which is exactly the
  /// deadline semantics asked for.
  template <class F>
  AcquireResult try_read_for(int /*cs_id*/, std::uint64_t budget_cycles,
                             F&& f) {
    const std::uint64_t deadline = checked_deadline(budget_cycles);
    for (;;) {
      std::uint32_t cur = rin_.load(std::memory_order_acquire);
      if ((cur & kWmask) != 0) {
        if (deadline_expired(deadline)) return AcquireResult::kTimeout;
        platform::pause();
        continue;
      }
      platform::advance(g_costs.cas);
      if (rin_.compare_exchange_strong(cur, cur + kReader,
                                       std::memory_order_acquire)) {
        break;
      }
      if (deadline_expired(deadline)) return AcquireResult::kTimeout;
    }
    platform::sched_point(SchedKind::kReadEnter, this);
    {
      ScopeExit release([&] {
        platform::advance(g_costs.cas);
        rout_.fetch_add(kReader, std::memory_order_release);
      });
      std::forward<F>(f)();
      platform::sched_point(SchedKind::kReadExit, this);
    }
    modes_.record_read(CommitMode::kPessimistic);
    return AcquireResult::kAcquired;
  }

  /// Deadline-bounded write. A queued ticket cannot be abandoned (the
  /// baton chain win/wout would stall on the hole), so a timed writer
  /// claims a ticket only when it would become the active writer at once
  /// (win == wout). Once active it may still abandon during the reader
  /// drain: it retracts its presence bits from rin (releasing readers
  /// spinning on this phase) and passes the baton with wout++, exactly
  /// the release sequence of a writer that never entered its section.
  /// rout is untouched — the still-draining readers will bump it, and the
  /// next writer's own rin snapshot accounts for them.
  template <class F>
  AcquireResult try_write_for(int /*cs_id*/, std::uint64_t budget_cycles,
                              F&& f) {
    const std::uint64_t deadline = checked_deadline(budget_cycles);
    std::uint32_t ticket;
    for (;;) {
      std::uint32_t cur = win_.load(std::memory_order_acquire);
      if (wout_.load(std::memory_order_acquire) != cur) {
        if (deadline_expired(deadline)) return AcquireResult::kTimeout;
        platform::pause();
        continue;
      }
      platform::advance(g_costs.cas);
      if (win_.compare_exchange_strong(cur, cur + 1,
                                       std::memory_order_acquire)) {
        ticket = cur;
        break;
      }
      if (deadline_expired(deadline)) return AcquireResult::kTimeout;
    }
    const std::uint32_t w = kPres | (ticket & kPhid);
    platform::advance(g_costs.cas);
    const std::uint32_t entered =
        rin_.fetch_add(w, std::memory_order_acquire) & ~kWmask;
    while (rout_.load(std::memory_order_acquire) != entered) {
      if (deadline_expired(deadline)) {
        platform::advance(g_costs.cas);
        rin_.fetch_sub(w, std::memory_order_release);
        platform::advance(g_costs.cas);
        wout_.fetch_add(1, std::memory_order_release);
        return AcquireResult::kTimeout;
      }
      platform::pause();
    }
    platform::sched_point(SchedKind::kWriteEnter, this);
    {
      ScopeExit release([&] {
        platform::advance(g_costs.cas);
        rin_.fetch_sub(w, std::memory_order_release);  // open the reader phase
        platform::advance(g_costs.cas);
        wout_.fetch_add(1, std::memory_order_release);  // admit the next writer
      });
      std::forward<F>(f)();
      platform::sched_point(SchedKind::kWriteExit, this);
    }
    modes_.record_write(CommitMode::kPessimistic);
    return AcquireResult::kAcquired;
  }

  LockStats stats() const { return modes_.snapshot(); }
  void reset_stats() { modes_.reset(); }
  static const char* name() noexcept { return "PhaseFair"; }

 private:
  static constexpr std::uint32_t kPres = 0x2;
  static constexpr std::uint32_t kPhid = 0x1;
  static constexpr std::uint32_t kWmask = kPres | kPhid;
  static constexpr std::uint32_t kReader = 0x4;

  std::atomic<std::uint32_t> rin_{0};
  std::atomic<std::uint32_t> rout_{0};
  std::atomic<std::uint32_t> win_{0};
  std::atomic<std::uint32_t> wout_{0};
  ModeRecorder modes_;
};

}  // namespace sprwl::locks
