// Phase-fair reader-writer lock (Brandenburg & Anderson, ECRTS'09), ticket
// variant (PF-T).
//
// Phase-fairness alternates reader and writer phases: a writer waits for at
// most one reader phase, and readers only wait for at most one writer. The
// paper discusses PFRWLs as the pessimistic relative of SpRWL's scheduling
// (Section 2); we include it as an extra baseline for the ablation benches.
//
// Layout of rin/rout: the upper bits count readers in units of kReader; the
// two low bits of rin carry the presence (kPres) and phase id (kPhid) of
// the writer currently in its entry protocol.
#pragma once

#include <atomic>
#include <utility>

#include "common/costs.h"
#include "common/platform.h"
#include "common/scope_exit.h"
#include "locks/stats.h"

namespace sprwl::locks {

class PhaseFairRWLock {
 public:
  explicit PhaseFairRWLock(int max_threads) : modes_(max_threads) {}

  template <class F>
  void read(int /*cs_id*/, F&& f) {
    platform::advance(g_costs.cas);
    const std::uint32_t w = rin_.fetch_add(kReader, std::memory_order_acquire) & kWmask;
    if (w != 0) {
      // A writer is present: wait until that exact writer incarnation
      // leaves (its phase id changes or presence clears).
      while ((rin_.load(std::memory_order_acquire) & kWmask) == w) platform::pause();
    }
    platform::sched_point(SchedKind::kReadEnter, this);
    {
      ScopeExit release([&] {
        platform::advance(g_costs.cas);
        rout_.fetch_add(kReader, std::memory_order_release);
      });
      std::forward<F>(f)();
      platform::sched_point(SchedKind::kReadExit, this);
    }
    modes_.record_read(CommitMode::kPessimistic);
  }

  template <class F>
  void write(int /*cs_id*/, F&& f) {
    platform::advance(g_costs.cas);
    const std::uint32_t ticket = win_.fetch_add(1, std::memory_order_acquire);
    while (wout_.load(std::memory_order_acquire) != ticket) platform::pause();
    const std::uint32_t w = kPres | (ticket & kPhid);
    platform::advance(g_costs.cas);
    const std::uint32_t entered =
        rin_.fetch_add(w, std::memory_order_acquire) & ~kWmask;
    while (rout_.load(std::memory_order_acquire) != entered) platform::pause();
    platform::sched_point(SchedKind::kWriteEnter, this);
    {
      ScopeExit release([&] {
        platform::advance(g_costs.cas);
        rin_.fetch_sub(w, std::memory_order_release);  // open the reader phase
        platform::advance(g_costs.cas);
        wout_.fetch_add(1, std::memory_order_release);  // admit the next writer
      });
      std::forward<F>(f)();
      platform::sched_point(SchedKind::kWriteExit, this);
    }
    modes_.record_write(CommitMode::kPessimistic);
  }

  LockStats stats() const { return modes_.snapshot(); }
  void reset_stats() { modes_.reset(); }
  static const char* name() noexcept { return "PhaseFair"; }

 private:
  static constexpr std::uint32_t kPres = 0x2;
  static constexpr std::uint32_t kPhid = 0x1;
  static constexpr std::uint32_t kWmask = kPres | kPhid;
  static constexpr std::uint32_t kReader = 0x4;

  std::atomic<std::uint32_t> rin_{0};
  std::atomic<std::uint32_t> rout_{0};
  std::atomic<std::uint32_t> win_{0};
  std::atomic<std::uint32_t> wout_{0};
  ModeRecorder modes_;
};

}  // namespace sprwl::locks
