// The region-style read-write-lock interface every lock in this library
// implements. Critical sections are passed as callables (the transaction
// demarcation mapping of the paper's Section 3: begin/commit of a read-only
// or update transaction become a read or write lock acquisition); cs_id
// identifies the section for per-section statistics and duration estimates.
#pragma once

#include <concepts>
#include <utility>

#include "locks/stats.h"

namespace sprwl::locks {

template <class L>
concept RegionRWLock = requires(L lock, int cs_id) {
  lock.read(cs_id, [] {});
  lock.write(cs_id, [] {});
  { lock.stats() } -> std::same_as<LockStats>;
  lock.reset_stats();
  { L::name() } -> std::convertible_to<const char*>;
};

}  // namespace sprwl::locks
