// The region-style read-write-lock interface every lock in this library
// implements. Critical sections are passed as callables (the transaction
// demarcation mapping of the paper's Section 3: begin/commit of a read-only
// or update transaction become a read or write lock acquisition); cs_id
// identifies the section for per-section statistics and duration estimates.
#pragma once

#include <concepts>
#include <cstdint>
#include <utility>

#include "locks/deadline.h"
#include "locks/stats.h"

namespace sprwl::locks {

template <class L>
concept RegionRWLock = requires(L lock, int cs_id) {
  lock.read(cs_id, [] {});
  lock.write(cs_id, [] {});
  { lock.stats() } -> std::same_as<LockStats>;
  lock.reset_stats();
  { L::name() } -> std::convertible_to<const char*>;
};

/// Deadline-aware extension: try_read_for / try_write_for take a RELATIVE
/// virtual-time budget in cycles (validated by checked_deadline at entry)
/// and return kAcquired or kTimeout. A kTimeout return guarantees full
/// unwind — no reader flag, BRAVO slot, SNZI arrival, queue position or
/// waiter count survives the abandoned acquisition. Not every baseline
/// models this (MCS-RW's queue node cannot be abandoned without an
/// abortable-MCS protocol; see DESIGN.md §13), so timed consumers gate on
/// this concept rather than assuming it.
template <class L>
concept TimedRegionRWLock =
    RegionRWLock<L> &&
    requires(L lock, int cs_id, std::uint64_t budget) {
      { lock.try_read_for(cs_id, budget, [] {}) }
          -> std::same_as<AcquireResult>;
      { lock.try_write_for(cs_id, budget, [] {}) }
          -> std::same_as<AcquireResult>;
    };

}  // namespace sprwl::locks
