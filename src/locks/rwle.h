// RW-LE — hardware read-write lock elision (Felber, Issa, Matveev, Romano,
// EuroSys'16), the POWER8-only competitor of the paper's evaluation.
//
// RW-LE executes readers uninstrumented (per-thread generation flags) and
// writers first as ordinary transactions, then as POWER8 rollback-only
// transactions (ROTs). Before a ROT's buffered writes are published, the
// writer runs a *quiescence* phase waiting for the readers that overlap it
// — the cost that makes RW-LE writers collapse under long readers (Fig. 3
// and Fig. 7 of the SpRWL paper).
//
// Emulation notes (no POWER8 here; see DESIGN.md):
//  * ROTs come from htm::Engine::try_rot (buffered writes, no read
//    tracking) and are serialized by a lock that HTM-path writers
//    subscribe to, matching RW-LE's serialized ROTs.
//  * Real hardware lets an uninstrumented reader abort a ROT by touching a
//    written line (requester-wins coherence). Software cannot observe
//    plain reads, so the publish instant is protected the other way
//    around: the writer opens a commit window that newly arriving readers
//    (who re-check it right after publishing their flag) retreat from. The
//    window is only held across the (virtual-time-instant) publish, not
//    across the critical section, so reader-writer concurrency — RW-LE's
//    selling point — is preserved, and the quiescence loop retains its
//    characteristic cost: it must catch a moment with no active reader.
#pragma once

#include <atomic>
#include <utility>
#include <vector>

#include "common/aligned.h"
#include "common/cacheline.h"
#include "common/platform.h"
#include "common/scope_exit.h"
#include "htm/engine.h"
#include "htm/shared.h"
#include "locks/deadline.h"
#include "locks/sgl.h"
#include "locks/stats.h"

namespace sprwl::locks {

class RWLELock {
 public:
  struct Config {
    int max_threads = 64;
    int htm_retries = 10;
    /// The RW-LE authors' budget for ROT attempts (the paper uses 5).
    int rot_retries = 5;
    /// Failed instant-window probes before the writer forcibly drains
    /// readers (bounds quiescence livelock; see header comment).
    int window_probes = 3;
  };

  static constexpr std::uint8_t kCodeLockBusy = 0x01;
  static constexpr std::uint8_t kCodeReader = 0x02;
  /// Raised from inside a ROT when the quiescence drain passes its
  /// deadline: the abort rolls the buffered writes back, which IS the
  /// cancellation unwind (nothing was published).
  static constexpr std::uint8_t kCodeTimeout = 0x03;

  explicit RWLELock(Config cfg)
      : cfg_(cfg),
        flags_(static_cast<std::size_t>(cfg.max_threads)),
        modes_(cfg.max_threads) {}

  template <class F>
  void read(int /*cs_id*/, F&& f) {
    auto& flag = flags_[static_cast<std::size_t>(platform::thread_id())];
    for (;;) {
      const std::uint64_t gen = flag.load() + 1;  // odd: active
      flag.store(gen);                            // strong-isolation store
      htm::memory_fence();
      if (!commit_window_.load(std::memory_order_seq_cst)) break;
      flag.store(gen + 1);  // retreat (back to even)
      while (commit_window_.load(std::memory_order_acquire)) platform::pause();
    }
    platform::sched_point(SchedKind::kReadEnter, this);
    {
      ScopeExit release([&] {
        htm::memory_fence();
        flag.store(flag.load() + 1);  // even: inactive
      });
      std::forward<F>(f)();
      platform::sched_point(SchedKind::kReadExit, this);
    }
    modes_.record_read(CommitMode::kUnins);
  }

  template <class F>
  void write(int /*cs_id*/, F&& f) {
    htm::Engine* engine = htm::Engine::current();
    const int self = platform::thread_id();

    int attempts = 0;
    for (;;) {
      while (rot_lock_.is_locked()) platform::pause();
      ++attempts;
      const htm::TxStatus status = engine->try_transaction([&] {
        if (rot_lock_.is_locked()) engine->abort_tx(kCodeLockBusy);
        platform::sched_point(SchedKind::kWriteEnter, this);
        f();
        // Commit-time reader check (the suspended-read trick on POWER8):
        for (int t = 0; t < cfg_.max_threads; ++t) {
          if (t == self) continue;
          if ((flags_[static_cast<std::size_t>(t)].load() & 1) != 0) {
            engine->abort_tx(kCodeReader);
          }
        }
        platform::sched_point(SchedKind::kWriteExit, this);
      });
      if (status.committed()) {
        modes_.record_write(CommitMode::kHtm);
        return;
      }
      modes_.record_abort(status, kCodeLockBusy, kCodeReader);
      if (status.cause == htm::AbortCause::kCapacity) {
        modes_.record_escalation(Escalation::kCapacity);
        break;
      }
      if (attempts >= cfg_.htm_retries) {
        modes_.record_escalation(Escalation::kRetryExhausted);
        break;
      }
    }

    // --- ROT path ----------------------------------------------------------
    rot_lock_.lock();
    ScopeExit release([&] {
      commit_window_.store(false, std::memory_order_release);
      rot_lock_.unlock();
    });
    for (int rot_attempts = 1;; ++rot_attempts) {
      const htm::TxStatus status = engine->try_rot([&] {
        platform::sched_point(SchedKind::kWriteEnter, this);
        f();
        quiesce(self);  // leaves the commit window open for the publish
        platform::sched_point(SchedKind::kWriteExit, this);
      });
      if (status.committed()) {
        modes_.record_write(CommitMode::kRot);
        return;
      }
      modes_.record_abort(status, kCodeLockBusy, kCodeReader);
      commit_window_.store(false, std::memory_order_release);
      if (rot_attempts >= cfg_.rot_retries) {
        modes_.record_escalation(Escalation::kRetryExhausted);
        break;
      }
    }

    // --- pessimistic last resort (rare: ROT kept aborting) ------------------
    commit_window_.store(true, std::memory_order_seq_cst);
    drain_readers(self);
    platform::sched_point(SchedKind::kWriteEnter, this);
    f();
    platform::sched_point(SchedKind::kWriteExit, this);
    modes_.record_write(CommitMode::kGl);
  }

  /// Deadline-bounded read. The generation flag is the only published
  /// state; a timeout can fire only while the flag is even (before the
  /// publish, or after the commit-window retreat already restored it), so
  /// no writer quiescence scan can be left waiting on a ghost.
  template <class F>
  AcquireResult try_read_for(int /*cs_id*/, std::uint64_t budget_cycles,
                             F&& f) {
    const std::uint64_t deadline = checked_deadline(budget_cycles);
    auto& flag = flags_[static_cast<std::size_t>(platform::thread_id())];
    for (;;) {
      if (deadline_expired(deadline)) return AcquireResult::kTimeout;
      const std::uint64_t gen = flag.load() + 1;  // odd: active
      flag.store(gen);                            // strong-isolation store
      htm::memory_fence();
      if (!commit_window_.load(std::memory_order_seq_cst)) break;
      flag.store(gen + 1);  // retreat (back to even)
      while (commit_window_.load(std::memory_order_acquire)) {
        if (deadline_expired(deadline)) return AcquireResult::kTimeout;
        platform::pause();
      }
    }
    platform::sched_point(SchedKind::kReadEnter, this);
    {
      ScopeExit release([&] {
        htm::memory_fence();
        flag.store(flag.load() + 1);  // even: inactive
      });
      std::forward<F>(f)();
      platform::sched_point(SchedKind::kReadExit, this);
    }
    modes_.record_read(CommitMode::kUnins);
    return AcquireResult::kAcquired;
  }

  /// Deadline-bounded write. HTM attempts are all-or-nothing; the ROT
  /// path's quiescence drain aborts the transaction with kCodeTimeout when
  /// the deadline passes (rolling back the buffered writes), and the
  /// unwind closes the commit window and releases the ROT lock. The
  /// pessimistic last resort likewise closes the window if its forced
  /// drain expires — a window left open would turn every future reader
  /// away forever.
  template <class F>
  AcquireResult try_write_for(int /*cs_id*/, std::uint64_t budget_cycles,
                              F&& f) {
    const std::uint64_t deadline = checked_deadline(budget_cycles);
    htm::Engine* engine = htm::Engine::current();
    const int self = platform::thread_id();

    int attempts = 0;
    for (;;) {
      while (rot_lock_.is_locked()) {
        if (deadline_expired(deadline)) return AcquireResult::kTimeout;
        platform::pause();
      }
      ++attempts;
      const htm::TxStatus status = engine->try_transaction([&] {
        if (rot_lock_.is_locked()) engine->abort_tx(kCodeLockBusy);
        platform::sched_point(SchedKind::kWriteEnter, this);
        f();
        for (int t = 0; t < cfg_.max_threads; ++t) {
          if (t == self) continue;
          if ((flags_[static_cast<std::size_t>(t)].load() & 1) != 0) {
            engine->abort_tx(kCodeReader);
          }
        }
        platform::sched_point(SchedKind::kWriteExit, this);
      });
      if (status.committed()) {
        modes_.record_write(CommitMode::kHtm);
        return AcquireResult::kAcquired;
      }
      modes_.record_abort(status, kCodeLockBusy, kCodeReader);
      if (status.cause == htm::AbortCause::kCapacity) {
        modes_.record_escalation(Escalation::kCapacity);
        break;
      }
      if (attempts >= cfg_.htm_retries) {
        modes_.record_escalation(Escalation::kRetryExhausted);
        break;
      }
      if (deadline_expired(deadline)) return AcquireResult::kTimeout;
    }

    // --- ROT path ----------------------------------------------------------
    if (!rot_lock_.lock_until(deadline)) return AcquireResult::kTimeout;
    ScopeExit release([&] {
      commit_window_.store(false, std::memory_order_release);
      rot_lock_.unlock();
    });
    for (int rot_attempts = 1;; ++rot_attempts) {
      const htm::TxStatus status = engine->try_rot([&] {
        platform::sched_point(SchedKind::kWriteEnter, this);
        f();
        quiesce_until(self, deadline, engine);
        platform::sched_point(SchedKind::kWriteExit, this);
      });
      if (status.committed()) {
        modes_.record_write(CommitMode::kRot);
        return AcquireResult::kAcquired;
      }
      if (status.cause == htm::AbortCause::kExplicit &&
          status.code == kCodeTimeout) {
        return AcquireResult::kTimeout;  // ScopeExit unwinds window + lock
      }
      modes_.record_abort(status, kCodeLockBusy, kCodeReader);
      commit_window_.store(false, std::memory_order_release);
      if (rot_attempts >= cfg_.rot_retries) {
        modes_.record_escalation(Escalation::kRetryExhausted);
        break;
      }
      if (deadline_expired(deadline)) return AcquireResult::kTimeout;
    }

    // --- pessimistic last resort (rare: ROT kept aborting) ------------------
    commit_window_.store(true, std::memory_order_seq_cst);
    if (!drain_readers_until(self, deadline)) {
      return AcquireResult::kTimeout;  // ScopeExit closes the window
    }
    platform::sched_point(SchedKind::kWriteEnter, this);
    f();
    platform::sched_point(SchedKind::kWriteExit, this);
    modes_.record_write(CommitMode::kGl);
    return AcquireResult::kAcquired;
  }

  LockStats stats() const { return modes_.snapshot(); }
  void reset_stats() { modes_.reset(); }
  static const char* name() noexcept { return "RW-LE"; }

 private:
  /// Grace period: every reader that was active at the snapshot finishes.
  /// New readers are free to start (RW-LE readers never wait for writers).
  void grace_period(int self) {
    for (int t = 0; t < cfg_.max_threads; ++t) {
      if (t == self) continue;
      auto& flag = flags_[static_cast<std::size_t>(t)];
      const std::uint64_t gen = flag.load();
      if ((gen & 1) == 0) continue;
      while (flag.load() == gen) platform::pause();
    }
  }

  /// Wait, with the commit window held open, until no reader is active.
  void drain_readers(int self) {
    std::atomic_thread_fence(std::memory_order_seq_cst);
    for (int t = 0; t < cfg_.max_threads; ++t) {
      if (t == self) continue;
      auto& flag = flags_[static_cast<std::size_t>(t)];
      while ((flag.load() & 1) != 0) platform::pause();
    }
  }

  /// Quiescence: catch an instant with no active reader. Returns with the
  /// commit window open so that the engine's publish (right after the ROT
  /// body returns) cannot overlap any reader.
  void quiesce(int self) {
    grace_period(self);
    for (int probe = 1;; ++probe) {
      commit_window_.store(true, std::memory_order_seq_cst);
      std::atomic_thread_fence(std::memory_order_seq_cst);
      bool any_active = false;
      for (int t = 0; t < cfg_.max_threads && !any_active; ++t) {
        if (t == self) continue;
        any_active = (flags_[static_cast<std::size_t>(t)].load() & 1) != 0;
      }
      if (!any_active) return;
      if (probe >= cfg_.window_probes) {
        drain_readers(self);  // bounded fallback: hold the window and drain
        return;
      }
      commit_window_.store(false, std::memory_order_release);
      grace_period(self);
    }
  }

  /// Timed grace period; false the moment the deadline passes.
  bool grace_period_until(int self, std::uint64_t deadline) {
    for (int t = 0; t < cfg_.max_threads; ++t) {
      if (t == self) continue;
      auto& flag = flags_[static_cast<std::size_t>(t)];
      const std::uint64_t gen = flag.load();
      if ((gen & 1) == 0) continue;
      while (flag.load() == gen) {
        if (deadline_expired(deadline)) return false;
        platform::pause();
      }
    }
    return true;
  }

  /// Timed forced drain; the CALLER must close the commit window when this
  /// returns false, or readers block forever.
  bool drain_readers_until(int self, std::uint64_t deadline) {
    std::atomic_thread_fence(std::memory_order_seq_cst);
    for (int t = 0; t < cfg_.max_threads; ++t) {
      if (t == self) continue;
      auto& flag = flags_[static_cast<std::size_t>(t)];
      while ((flag.load() & 1) != 0) {
        if (deadline_expired(deadline)) return false;
        platform::pause();
      }
    }
    return true;
  }

  /// Timed quiescence, run inside a ROT: on expiry it closes the commit
  /// window (plain atomic — the rollback would not) and aborts the
  /// transaction, discarding the buffered writes.
  void quiesce_until(int self, std::uint64_t deadline, htm::Engine* engine) {
    const auto timed_out = [&]() {
      commit_window_.store(false, std::memory_order_release);
      engine->abort_tx(kCodeTimeout);
    };
    if (!grace_period_until(self, deadline)) timed_out();
    for (int probe = 1;; ++probe) {
      commit_window_.store(true, std::memory_order_seq_cst);
      std::atomic_thread_fence(std::memory_order_seq_cst);
      bool any_active = false;
      for (int t = 0; t < cfg_.max_threads && !any_active; ++t) {
        if (t == self) continue;
        any_active = (flags_[static_cast<std::size_t>(t)].load() & 1) != 0;
      }
      if (!any_active) return;
      if (probe >= cfg_.window_probes) {
        if (!drain_readers_until(self, deadline)) timed_out();
        return;
      }
      commit_window_.store(false, std::memory_order_release);
      if (!grace_period_until(self, deadline)) timed_out();
    }
  }

  Config cfg_;
  // Packed for the same reason as SpRWL's state array: the HTM writers'
  // commit-time scan of all flags must fit in capacity.
  aligned_vector<htm::Shared<std::uint64_t>> flags_;
  SglLock rot_lock_;
  std::atomic<bool> commit_window_{false};
  ModeRecorder modes_;
};

}  // namespace sprwl::locks
