// Classic counter-based read-write lock ("RWL" in the paper's plots).
//
// Mirrors the design the paper attributes to the pthread implementation:
// two counters protected by an internal mutex. We use writer preference
// (arriving writers block new readers) so that the baseline does not starve
// writers in read-dominated workloads; either policy scales equally poorly,
// which is the property the evaluation exposes.
//
// Exposes the region-style interface shared by every lock in this library:
//   lock.read(cs_id, [&]{ ... });   lock.write(cs_id, [&]{ ... });
// cs_id identifies the critical section for statistics; pessimistic locks
// ignore it.
#pragma once

#include <atomic>
#include <utility>

#include "common/platform.h"
#include "common/scope_exit.h"
#include "common/spin_mutex.h"
#include "locks/deadline.h"
#include "locks/stats.h"

namespace sprwl::locks {

class PosixRWLock {
 public:
  explicit PosixRWLock(int max_threads) : modes_(max_threads) {}

  template <class F>
  void read(int /*cs_id*/, F&& f) {
    for (;;) {
      // Wait passively (like a futex sleeper) before touching the mutex.
      while (writer_active_.load(std::memory_order_relaxed) ||
             writers_waiting_.load(std::memory_order_relaxed) > 0) {
        platform::pause();
      }
      mutex_.lock();
      if (!writer_active_.load(std::memory_order_relaxed) &&
          writers_waiting_.load(std::memory_order_relaxed) == 0) {
        readers_.fetch_add(1, std::memory_order_relaxed);
        mutex_.unlock();
        break;
      }
      mutex_.unlock();
      platform::pause();
    }
    platform::sched_point(SchedKind::kReadEnter, this);
    {
      ScopeExit release([&] {
        mutex_.lock();
        readers_.fetch_sub(1, std::memory_order_relaxed);
        mutex_.unlock();
      });
      std::forward<F>(f)();
      platform::sched_point(SchedKind::kReadExit, this);
    }
    modes_.record_read(CommitMode::kPessimistic);
  }

  template <class F>
  void write(int /*cs_id*/, F&& f) {
    mutex_.lock();
    writers_waiting_.fetch_add(1, std::memory_order_relaxed);
    mutex_.unlock();
    for (;;) {
      while (writer_active_.load(std::memory_order_relaxed) ||
             readers_.load(std::memory_order_relaxed) > 0) {
        platform::pause();
      }
      mutex_.lock();
      if (!writer_active_.load(std::memory_order_relaxed) &&
          readers_.load(std::memory_order_relaxed) == 0) {
        writer_active_.store(true, std::memory_order_relaxed);
        writers_waiting_.fetch_sub(1, std::memory_order_relaxed);
        mutex_.unlock();
        break;
      }
      mutex_.unlock();
      platform::pause();
    }
    platform::sched_point(SchedKind::kWriteEnter, this);
    {
      ScopeExit release([&] {
        mutex_.lock();
        writer_active_.store(false, std::memory_order_relaxed);
        mutex_.unlock();
      });
      std::forward<F>(f)();
      platform::sched_point(SchedKind::kWriteExit, this);
    }
    modes_.record_write(CommitMode::kPessimistic);
  }

  /// Deadline-bounded read: nothing is published until the reader count is
  /// incremented under the mutex, so a pre-entry timeout needs no unwind.
  template <class F>
  AcquireResult try_read_for(int /*cs_id*/, std::uint64_t budget_cycles,
                             F&& f) {
    const std::uint64_t deadline = checked_deadline(budget_cycles);
    for (;;) {
      while (writer_active_.load(std::memory_order_relaxed) ||
             writers_waiting_.load(std::memory_order_relaxed) > 0) {
        if (deadline_expired(deadline)) return AcquireResult::kTimeout;
        platform::pause();
      }
      if (!mutex_.try_lock_until(deadline)) return AcquireResult::kTimeout;
      if (!writer_active_.load(std::memory_order_relaxed) &&
          writers_waiting_.load(std::memory_order_relaxed) == 0) {
        readers_.fetch_add(1, std::memory_order_relaxed);
        mutex_.unlock();
        break;
      }
      mutex_.unlock();
      if (deadline_expired(deadline)) return AcquireResult::kTimeout;
      platform::pause();
    }
    platform::sched_point(SchedKind::kReadEnter, this);
    {
      ScopeExit release([&] {
        mutex_.lock();
        readers_.fetch_sub(1, std::memory_order_relaxed);
        mutex_.unlock();
      });
      std::forward<F>(f)();
      platform::sched_point(SchedKind::kReadExit, this);
    }
    modes_.record_read(CommitMode::kPessimistic);
    return AcquireResult::kAcquired;
  }

  /// Deadline-bounded write. The waiting-writer count is published before
  /// the drain (it is what blocks new readers — writer preference), so the
  /// timeout unwind MUST decrement it: a leaked waiting count would turn
  /// away every future reader forever. The unwind's mutex acquisition is
  /// deliberately untimed — it only waits out transient holders, and the
  /// invariant restore cannot be abandoned.
  template <class F>
  AcquireResult try_write_for(int /*cs_id*/, std::uint64_t budget_cycles,
                              F&& f) {
    const std::uint64_t deadline = checked_deadline(budget_cycles);
    if (!mutex_.try_lock_until(deadline)) return AcquireResult::kTimeout;
    writers_waiting_.fetch_add(1, std::memory_order_relaxed);
    mutex_.unlock();
    const auto abandon = [&]() -> AcquireResult {
      mutex_.lock();
      writers_waiting_.fetch_sub(1, std::memory_order_relaxed);
      mutex_.unlock();
      return AcquireResult::kTimeout;
    };
    for (;;) {
      while (writer_active_.load(std::memory_order_relaxed) ||
             readers_.load(std::memory_order_relaxed) > 0) {
        if (deadline_expired(deadline)) return abandon();
        platform::pause();
      }
      mutex_.lock();
      if (!writer_active_.load(std::memory_order_relaxed) &&
          readers_.load(std::memory_order_relaxed) == 0) {
        writer_active_.store(true, std::memory_order_relaxed);
        writers_waiting_.fetch_sub(1, std::memory_order_relaxed);
        mutex_.unlock();
        break;
      }
      mutex_.unlock();
      if (deadline_expired(deadline)) return abandon();
      platform::pause();
    }
    platform::sched_point(SchedKind::kWriteEnter, this);
    {
      ScopeExit release([&] {
        mutex_.lock();
        writer_active_.store(false, std::memory_order_relaxed);
        mutex_.unlock();
      });
      std::forward<F>(f)();
      platform::sched_point(SchedKind::kWriteExit, this);
    }
    modes_.record_write(CommitMode::kPessimistic);
    return AcquireResult::kAcquired;
  }

  LockStats stats() const { return modes_.snapshot(); }
  void reset_stats() { modes_.reset(); }
  static const char* name() noexcept { return "RWL"; }

 private:
  SpinMutex mutex_;
  std::atomic<int> readers_{0};
  std::atomic<int> writers_waiting_{0};
  std::atomic<bool> writer_active_{false};
  ModeRecorder modes_;
};

}  // namespace sprwl::locks
