// Plain transactional lock elision (TLE).
//
// Both readers and writers run the critical section as a hardware
// transaction that subscribes to a single global fallback lock; after
// max_retries failed attempts — or immediately on a capacity abort, the
// retry policy the paper uses for every HTM baseline — the section runs
// pessimistically under the lock. This is the "TLE" baseline of every
// figure: excellent while critical sections fit HTM, cliff-edge once long
// readers exceed capacity.
#pragma once

#include <utility>

#include "common/platform.h"
#include "common/scope_exit.h"
#include "htm/engine.h"
#include "locks/deadline.h"
#include "locks/sgl.h"
#include "locks/stats.h"

namespace sprwl::locks {

class TLELock {
 public:
  struct Config {
    int max_threads = 64;
    int max_retries = 10;
  };

  /// Explicit-abort code raised when the subscribed lock is found busy.
  static constexpr std::uint8_t kCodeLockBusy = 0x01;

  explicit TLELock(Config cfg) : cfg_(cfg), modes_(cfg.max_threads) {}

  template <class F>
  void read(int /*cs_id*/, F&& f) {
    modes_.record_read(elide(SchedKind::kReadEnter, SchedKind::kReadExit,
                             std::forward<F>(f)));
  }

  template <class F>
  void write(int /*cs_id*/, F&& f) {
    modes_.record_write(elide(SchedKind::kWriteEnter, SchedKind::kWriteExit,
                              std::forward<F>(f)));
  }

  /// Deadline-bounded read. An aborted transaction leaves no shared state
  /// behind by construction, so the only unwind-sensitive step is the
  /// fallback lock acquisition, which is timed.
  template <class F>
  AcquireResult try_read_for(int /*cs_id*/, std::uint64_t budget_cycles,
                             F&& f) {
    const std::uint64_t deadline = checked_deadline(budget_cycles);
    CommitMode mode{};
    if (!elide_until(SchedKind::kReadEnter, SchedKind::kReadExit, deadline,
                     std::forward<F>(f), mode)) {
      return AcquireResult::kTimeout;
    }
    modes_.record_read(mode);
    return AcquireResult::kAcquired;
  }

  template <class F>
  AcquireResult try_write_for(int /*cs_id*/, std::uint64_t budget_cycles,
                              F&& f) {
    const std::uint64_t deadline = checked_deadline(budget_cycles);
    CommitMode mode{};
    if (!elide_until(SchedKind::kWriteEnter, SchedKind::kWriteExit, deadline,
                     std::forward<F>(f), mode)) {
      return AcquireResult::kTimeout;
    }
    modes_.record_write(mode);
    return AcquireResult::kAcquired;
  }

  LockStats stats() const { return modes_.snapshot(); }
  void reset_stats() { modes_.reset(); }
  static const char* name() noexcept { return "TLE"; }

 private:
  template <class F>
  CommitMode elide(SchedKind enter, SchedKind exit, F&& f) {
    CommitMode mode{};
    elide_until(enter, exit, kNoDeadline, std::forward<F>(f), mode);
    return mode;  // always succeeds at kNoDeadline
  }

  /// Shared elision loop. With deadline == kNoDeadline the expiry checks
  /// read the free virtual clock and never fire, and SglLock::lock_until
  /// charges exactly what lock() does, so the untimed entry points above
  /// keep their traces byte-identical to the pre-deadline implementation.
  template <class F>
  bool elide_until(SchedKind enter, SchedKind exit, std::uint64_t deadline,
                   F&& f, CommitMode& mode) {
    htm::Engine* engine = htm::Engine::current();
    int attempts = 0;
    for (;;) {
      while (gl_.is_locked()) {
        if (deadline_expired(deadline)) return false;
        platform::pause();
      }
      ++attempts;
      const htm::TxStatus status = engine->try_transaction([&] {
        if (gl_.is_locked()) engine->abort_tx(kCodeLockBusy);  // subscription
        platform::sched_point(enter, this);
        f();
        platform::sched_point(exit, this);
      });
      if (status.committed()) {
        mode = CommitMode::kHtm;
        return true;
      }
      modes_.record_abort(status, kCodeLockBusy);
      if (status.cause == htm::AbortCause::kCapacity) {
        modes_.record_escalation(Escalation::kCapacity);
        break;
      }
      if (attempts >= cfg_.max_retries) {
        modes_.record_escalation(Escalation::kRetryExhausted);
        break;
      }
      if (deadline_expired(deadline)) return false;
    }
    if (!gl_.lock_until(deadline)) return false;
    platform::sched_point(enter, this);
    {
      ScopeExit release([&] { gl_.unlock(); });
      f();
      platform::sched_point(exit, this);
    }
    mode = CommitMode::kGl;
    return true;
  }

  Config cfg_;
  SglLock gl_;
  ModeRecorder modes_;
};

}  // namespace sprwl::locks
