// Passive reader-writer lock, after PRWL (Liu, Zhang, Chen — USENIX
// ATC'14).
//
// Readers never perform an atomic read-modify-write on shared state: they
// publish a per-thread version-stamped flag and a fence, and proceed unless
// a writer is present. Writers serialize on a mutex, bump the global
// version and wait until every reader slot is either inactive or stamped
// with the new version (i.e., the reader acknowledged the writer). This is
// the version-based consensus the paper's related-work section describes,
// reduced to its message-passing core (the original distinguishes hot/cold
// readers; our workloads are uniformly hot).
#pragma once

#include <atomic>
#include <utility>
#include <vector>

#include "common/cacheline.h"
#include "common/costs.h"
#include "common/platform.h"
#include "common/scope_exit.h"
#include "common/spin_mutex.h"
#include "locks/deadline.h"
#include "locks/stats.h"

namespace sprwl::locks {

class PassiveRWLock {
 public:
  explicit PassiveRWLock(int max_threads)
      : slots_(static_cast<std::size_t>(max_threads)), modes_(max_threads) {}

  template <class F>
  void read(int /*cs_id*/, F&& f) {
    auto& slot = *slots_[static_cast<std::size_t>(platform::thread_id())];
    for (;;) {
      const std::uint64_t v = version_.load(std::memory_order_acquire);
      platform::advance(g_costs.store + g_costs.fence);
      slot.store(make_active(v), std::memory_order_seq_cst);
      if (version_.load(std::memory_order_seq_cst) == v &&
          !writer_present_.load(std::memory_order_seq_cst)) {
        break;
      }
      // A writer moved in: retreat and wait passively.
      slot.store(kInactive, std::memory_order_release);
      while (writer_present_.load(std::memory_order_acquire)) platform::pause();
    }
    platform::sched_point(SchedKind::kReadEnter, this);
    {
      ScopeExit release([&] {
        platform::advance(g_costs.store);
        slot.store(kInactive, std::memory_order_release);
      });
      std::forward<F>(f)();
      platform::sched_point(SchedKind::kReadExit, this);
    }
    modes_.record_read(CommitMode::kPessimistic);
  }

  template <class F>
  void write(int /*cs_id*/, F&& f) {
    mutex_.lock();
    platform::advance(g_costs.store + g_costs.fence);
    writer_present_.store(true, std::memory_order_seq_cst);
    version_.fetch_add(1, std::memory_order_seq_cst);
    // Consensus: wait until no reader from an older version is active.
    for (auto& s : slots_) {
      while (s->load(std::memory_order_acquire) != kInactive) platform::pause();
    }
    platform::sched_point(SchedKind::kWriteEnter, this);
    {
      ScopeExit release([&] {
        platform::advance(g_costs.store);
        writer_present_.store(false, std::memory_order_release);
        mutex_.unlock();
      });
      std::forward<F>(f)();
      platform::sched_point(SchedKind::kWriteExit, this);
    }
    modes_.record_write(CommitMode::kPessimistic);
  }

  /// Deadline-bounded read: a timeout can only fire while the slot is
  /// inactive (before the publish, or after the retreat already cleared
  /// it), so the abandoned acquisition leaves no stamped slot for a
  /// writer's consensus drain to wait on.
  template <class F>
  AcquireResult try_read_for(int /*cs_id*/, std::uint64_t budget_cycles,
                             F&& f) {
    const std::uint64_t deadline = checked_deadline(budget_cycles);
    auto& slot = *slots_[static_cast<std::size_t>(platform::thread_id())];
    for (;;) {
      if (deadline_expired(deadline)) return AcquireResult::kTimeout;
      const std::uint64_t v = version_.load(std::memory_order_acquire);
      platform::advance(g_costs.store + g_costs.fence);
      slot.store(make_active(v), std::memory_order_seq_cst);
      if (version_.load(std::memory_order_seq_cst) == v &&
          !writer_present_.load(std::memory_order_seq_cst)) {
        break;
      }
      // A writer moved in: retreat and wait passively.
      slot.store(kInactive, std::memory_order_release);
      while (writer_present_.load(std::memory_order_acquire)) {
        if (deadline_expired(deadline)) return AcquireResult::kTimeout;
        platform::pause();
      }
    }
    platform::sched_point(SchedKind::kReadEnter, this);
    {
      ScopeExit release([&] {
        platform::advance(g_costs.store);
        slot.store(kInactive, std::memory_order_release);
      });
      std::forward<F>(f)();
      platform::sched_point(SchedKind::kReadExit, this);
    }
    modes_.record_read(CommitMode::kPessimistic);
    return AcquireResult::kAcquired;
  }

  /// Deadline-bounded write: the consensus drain (a reader parked in its
  /// section stalls it indefinitely) is the abandonable wait. The unwind
  /// clears writer_present_ and releases the mutex; the version bump
  /// stays, which is harmless — readers only compare their own stamp
  /// against the current version, never against a count.
  template <class F>
  AcquireResult try_write_for(int /*cs_id*/, std::uint64_t budget_cycles,
                              F&& f) {
    const std::uint64_t deadline = checked_deadline(budget_cycles);
    if (!mutex_.try_lock_until(deadline)) return AcquireResult::kTimeout;
    platform::advance(g_costs.store + g_costs.fence);
    writer_present_.store(true, std::memory_order_seq_cst);
    version_.fetch_add(1, std::memory_order_seq_cst);
    // Consensus: wait until no reader from an older version is active.
    for (auto& s : slots_) {
      while (s->load(std::memory_order_acquire) != kInactive) {
        if (deadline_expired(deadline)) {
          platform::advance(g_costs.store);
          writer_present_.store(false, std::memory_order_release);
          mutex_.unlock();
          return AcquireResult::kTimeout;
        }
        platform::pause();
      }
    }
    platform::sched_point(SchedKind::kWriteEnter, this);
    {
      ScopeExit release([&] {
        platform::advance(g_costs.store);
        writer_present_.store(false, std::memory_order_release);
        mutex_.unlock();
      });
      std::forward<F>(f)();
      platform::sched_point(SchedKind::kWriteExit, this);
    }
    modes_.record_write(CommitMode::kPessimistic);
    return AcquireResult::kAcquired;
  }

  LockStats stats() const { return modes_.snapshot(); }
  void reset_stats() { modes_.reset(); }
  static const char* name() noexcept { return "PRWL"; }

 private:
  static constexpr std::uint64_t kInactive = 0;
  static std::uint64_t make_active(std::uint64_t version) noexcept {
    return (version << 1) | 1;
  }

  std::vector<CacheLinePadded<std::atomic<std::uint64_t>>> slots_;
  std::atomic<std::uint64_t> version_{0};
  std::atomic<bool> writer_present_{false};
  SpinMutex mutex_;
  ModeRecorder modes_;
};

}  // namespace sprwl::locks
