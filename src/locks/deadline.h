// Deadline-aware acquisition: the shared vocabulary for the timed lock
// API (try_read_for / try_write_for) across src/core/ and src/locks/.
//
// Deadlines are virtual-time budgets: a caller passes a RELATIVE budget in
// cycles and the lock converts it once, at entry, into an absolute
// platform::now() deadline. Expiry checks compare against platform::now(),
// which is free in the simulator (it reads the fiber clock without
// charging), so a timed acquisition with budget == kNoDeadline executes
// the exact same charged-operation sequence as the untimed entry points —
// the byte-identical-traces property the bench determinism tests pin.
//
// kShed is never produced by a lock itself: it is the admission-control
// outcome of the open-loop queue layer (sim/arrivals.h), which shares this
// result type so per-class service stats can count all three terminal
// outcomes uniformly.
#pragma once

#include <cstdint>
#include <stdexcept>

#include "common/costs.h"
#include "common/platform.h"

namespace sprwl::locks {

enum class AcquireResult : std::uint8_t {
  kAcquired = 0,  ///< lock held, closure ran, lock released
  kTimeout = 1,   ///< deadline expired before entry; all state unwound
  kShed = 2,      ///< rejected by admission control before reaching the lock
};

inline const char* to_string(AcquireResult r) noexcept {
  switch (r) {
    case AcquireResult::kAcquired: return "acquired";
    case AcquireResult::kTimeout: return "timeout";
    case AcquireResult::kShed: return "shed";
  }
  return "?";
}

/// "No deadline" sentinel: an absolute virtual time no run reaches. Timed
/// entry points called with this budget must compile down to the untimed
/// paths (every expiry check is a not-taken branch on a free clock read).
inline constexpr std::uint64_t kNoDeadline = ~std::uint64_t{0};

/// Converts a relative budget (cycles from now) into an absolute deadline,
/// validating it loudly at entry — the checked_tid convention. A zero
/// budget is rejected rather than treated as "already expired" (it is
/// always a caller bug: try_lock semantics belong to an explicit API, not
/// to a degenerate deadline), and a budget that would wrap the virtual
/// clock is rejected rather than silently becoming a past deadline.
inline std::uint64_t checked_deadline(std::uint64_t budget_cycles) {
  if (budget_cycles == 0) {
    throw std::invalid_argument("deadline budget must be nonzero");
  }
  if (budget_cycles == kNoDeadline) return kNoDeadline;
  const std::uint64_t now = platform::now();
  if (budget_cycles > kNoDeadline - now - 1) {
    throw std::invalid_argument(
        "deadline budget overflows the virtual clock");
  }
  return now + budget_cycles;
}

/// True iff `deadline` is a real deadline that has passed. Free in the
/// simulator: platform::now() does not charge, so sprinkling this on hot
/// paths cannot perturb untimed traces.
inline bool deadline_expired(std::uint64_t deadline) noexcept {
  return deadline != kNoDeadline && platform::now() >= deadline;
}

/// Caps a wait target at the deadline (identity when kNoDeadline).
inline std::uint64_t cap_wait(std::uint64_t until,
                              std::uint64_t deadline) noexcept {
  return until < deadline ? until : deadline;
}

/// pause() for deadline-bounded spin loops. A plain pause advances the
/// clock by its full cost, so a spinner detects expiry only at the next
/// multiple of g_costs.pause past the deadline — the retry the waiter then
/// abandons was already doomed when the deadline struck. When the expiry
/// would land inside the pause, this sleeps on a deadline-keyed simulator
/// wakeup to exactly `deadline` instead, so the caller's next
/// deadline_expired() check observes now == deadline precisely (the
/// wait-until writer abort). kNoDeadline compiles to the plain pause —
/// untimed traces stay byte-identical.
inline void deadline_pause(std::uint64_t deadline) {
  if (deadline != kNoDeadline) {
    const std::uint64_t now = platform::now();
    if (now < deadline && deadline - now < g_costs.pause) {
      platform::wait_until(deadline);
      return;
    }
  }
  platform::pause();
}

}  // namespace sprwl::locks
